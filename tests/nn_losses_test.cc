#include "nn/losses.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gale::nn {
namespace {

// Central-difference check of a loss function's logits gradient.
template <typename LossFn>
void CheckLossGradient(const la::Matrix& logits, LossFn loss_fn,
                       double tol = 1e-6) {
  la::Matrix grad;
  loss_fn(logits, &grad);
  const double eps = 1e-6;
  la::Matrix probe = logits;
  for (size_t i = 0; i < logits.data().size(); ++i) {
    la::Matrix unused;
    probe.data()[i] = logits.data()[i] + eps;
    const double plus = loss_fn(probe, &unused);
    probe.data()[i] = logits.data()[i] - eps;
    const double minus = loss_fn(probe, &unused);
    probe.data()[i] = logits.data()[i];
    const double numeric = (plus - minus) / (2 * eps);
    EXPECT_NEAR(grad.data()[i], numeric, tol * (1.0 + std::abs(numeric)))
        << "flat index " << i;
  }
}

TEST(SoftmaxTest, RowsSumToOne) {
  la::Matrix logits = la::Matrix::FromRows({{1, 2, 3}, {-5, 0, 5}});
  la::Matrix probs = Softmax(logits);
  for (size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 3; ++c) {
      sum += probs.At(r, c);
      EXPECT_GT(probs.At(r, c), 0.0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(SoftmaxTest, StableForLargeLogits) {
  la::Matrix logits = la::Matrix::FromRows({{1000, 1001, 999}});
  la::Matrix probs = Softmax(logits);
  EXPECT_FALSE(std::isnan(probs.At(0, 0)));
  EXPECT_GT(probs.At(0, 1), probs.At(0, 0));
}

TEST(SoftmaxCrossEntropyTest, KnownValue) {
  // Uniform logits over 2 classes: loss = log 2.
  la::Matrix logits(1, 2, 0.0);
  la::Matrix grad;
  const double loss =
      SoftmaxCrossEntropy(logits, {0}, {1}, &grad);
  EXPECT_NEAR(loss, std::log(2.0), 1e-9);
  EXPECT_NEAR(grad.At(0, 0), -0.5, 1e-12);
  EXPECT_NEAR(grad.At(0, 1), 0.5, 1e-12);
}

TEST(SoftmaxCrossEntropyTest, MaskedRowsContributeNothing) {
  util::Rng rng(1);
  la::Matrix logits = la::Matrix::RandomNormal(3, 4, 1.0, rng);
  la::Matrix grad;
  const double loss =
      SoftmaxCrossEntropy(logits, {0, 1, 2}, {1, 0, 0}, &grad);
  EXPECT_GT(loss, 0.0);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(grad.At(1, c), 0.0);
    EXPECT_DOUBLE_EQ(grad.At(2, c), 0.0);
  }
}

TEST(SoftmaxCrossEntropyTest, AllMaskedIsZero) {
  la::Matrix logits(2, 3, 1.0);
  la::Matrix grad;
  EXPECT_DOUBLE_EQ(SoftmaxCrossEntropy(logits, {0, 0}, {0, 0}, &grad), 0.0);
}

TEST(SoftmaxCrossEntropyTest, GradientCheck) {
  util::Rng rng(2);
  la::Matrix logits = la::Matrix::RandomNormal(4, 3, 1.0, rng);
  std::vector<int> labels = {0, 2, 1, 0};
  std::vector<uint8_t> mask = {1, 1, 0, 1};
  CheckLossGradient(logits, [&](const la::Matrix& l, la::Matrix* g) {
    return SoftmaxCrossEntropy(l, labels, mask, g);
  });
}

TEST(ConditionalCrossEntropyTest, IgnoresSyntheticLogit) {
  // The conditional loss P(y | x, y <= 2) must not depend on logit 3.
  la::Matrix a = la::Matrix::FromRows({{1.0, 2.0, -7.0}});
  la::Matrix b = la::Matrix::FromRows({{1.0, 2.0, 55.0}});
  la::Matrix ga;
  la::Matrix gb;
  const double la_ = ConditionalCrossEntropy(a, 2, {1}, {1}, &ga);
  const double lb = ConditionalCrossEntropy(b, 2, {1}, {1}, &gb);
  EXPECT_NEAR(la_, lb, 1e-12);
  EXPECT_DOUBLE_EQ(ga.At(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(gb.At(0, 2), 0.0);
}

TEST(ConditionalCrossEntropyTest, GradientCheck) {
  util::Rng rng(3);
  la::Matrix logits = la::Matrix::RandomNormal(5, 3, 1.0, rng);
  std::vector<int> labels = {0, 1, 1, 0, 1};
  std::vector<uint8_t> mask = {1, 1, 1, 0, 1};
  CheckLossGradient(logits, [&](const la::Matrix& l, la::Matrix* g) {
    return ConditionalCrossEntropy(l, 2, labels, mask, g);
  });
}

TEST(GanUnsupervisedLossTest, RealRowsPenalizeFakeMass) {
  // A real row with all mass on the fake class should have huge loss.
  la::Matrix confident_fake = la::Matrix::FromRows({{0.0, 0.0, 20.0}});
  la::Matrix confident_real = la::Matrix::FromRows({{20.0, 0.0, 0.0}});
  la::Matrix grad;
  const double bad =
      GanUnsupervisedLoss(confident_fake, {0}, &grad);
  const double good =
      GanUnsupervisedLoss(confident_real, {0}, &grad);
  EXPECT_GT(bad, 5.0);
  EXPECT_LT(good, 1e-6);
}

TEST(GanUnsupervisedLossTest, FakeRowsRewardFakeMass) {
  la::Matrix confident_fake = la::Matrix::FromRows({{0.0, 0.0, 20.0}});
  la::Matrix grad;
  EXPECT_LT(GanUnsupervisedLoss(confident_fake, {1}, &grad), 1e-6);
}

TEST(GanUnsupervisedLossTest, GradientCheckMixedBatch) {
  util::Rng rng(4);
  la::Matrix logits = la::Matrix::RandomNormal(6, 3, 1.0, rng);
  std::vector<uint8_t> is_fake = {0, 1, 0, 1, 1, 0};
  CheckLossGradient(logits, [&](const la::Matrix& l, la::Matrix* g) {
    return GanUnsupervisedLoss(l, is_fake, g);
  });
}

TEST(FeatureMatchingLossTest, ZeroWhenMeansMatch) {
  la::Matrix real = la::Matrix::FromRows({{1, 2}, {3, 4}});
  la::Matrix fake = la::Matrix::FromRows({{3, 4}, {1, 2}});
  la::Matrix grad;
  EXPECT_NEAR(FeatureMatchingLoss(real, fake, &grad), 0.0, 1e-12);
  EXPECT_NEAR(grad.FrobeniusNorm(), 0.0, 1e-12);
}

TEST(FeatureMatchingLossTest, KnownValueAndGradient) {
  la::Matrix real = la::Matrix::FromRows({{0.0, 0.0}});
  la::Matrix fake = la::Matrix::FromRows({{2.0, 0.0}});
  la::Matrix grad;
  // ||(2,0) - (0,0)||^2 = 4; d/dfake = 2*(2,0)/1 = (4, 0).
  EXPECT_NEAR(FeatureMatchingLoss(real, fake, &grad), 4.0, 1e-12);
  EXPECT_NEAR(grad.At(0, 0), 4.0, 1e-12);
  EXPECT_NEAR(grad.At(0, 1), 0.0, 1e-12);
}

TEST(FeatureMatchingLossTest, GradientCheckOnFake) {
  util::Rng rng(5);
  la::Matrix real = la::Matrix::RandomNormal(4, 3, 1.0, rng);
  la::Matrix fake = la::Matrix::RandomNormal(6, 3, 1.0, rng);
  la::Matrix grad;
  FeatureMatchingLoss(real, fake, &grad);
  const double eps = 1e-6;
  for (size_t i = 0; i < fake.data().size(); ++i) {
    la::Matrix unused;
    la::Matrix probe = fake;
    probe.data()[i] += eps;
    const double plus = FeatureMatchingLoss(real, probe, &unused);
    probe.data()[i] = fake.data()[i] - eps;
    const double minus = FeatureMatchingLoss(real, probe, &unused);
    EXPECT_NEAR(grad.data()[i], (plus - minus) / (2 * eps), 1e-6);
  }
}

TEST(BinaryCrossEntropyTest, KnownValues) {
  std::vector<double> grad;
  EXPECT_NEAR(BinaryCrossEntropy({0.5}, {1.0}, &grad), std::log(2.0), 1e-9);
  EXPECT_NEAR(BinaryCrossEntropy({0.9}, {1.0}, &grad), -std::log(0.9), 1e-9);
  // Gradient of -log(p) at p = 0.5 for one sample: -2.
  BinaryCrossEntropy({0.5}, {1.0}, &grad);
  EXPECT_NEAR(grad[0], -2.0, 1e-9);
}

TEST(BinaryCrossEntropyTest, ClampsExtremeProbabilities) {
  std::vector<double> grad;
  const double loss = BinaryCrossEntropy({0.0, 1.0}, {1.0, 0.0}, &grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_TRUE(std::isfinite(grad[0]));
}

}  // namespace
}  // namespace gale::nn
