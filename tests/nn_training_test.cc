// Training-dynamics tests: Adam convergence, GAE edge reconstruction.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "la/sparse_matrix.h"
#include "nn/activations.h"
#include "nn/adam.h"
#include "nn/dense.h"
#include "nn/gae.h"
#include "nn/losses.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace gale::nn {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize ||x - target||^2 over a single parameter matrix.
  la::Matrix x(1, 3, 0.0);
  la::Matrix target = la::Matrix::FromRows({{1.0, -2.0, 3.0}});
  la::Matrix grad(1, 3, 0.0);
  Adam adam(AdamOptions{.learning_rate = 0.05});
  for (int step = 0; step < 2000; ++step) {
    for (size_t i = 0; i < 3; ++i) {
      grad.data()[i] = 2.0 * (x.data()[i] - target.data()[i]);
    }
    adam.Step({&x}, {&grad});
  }
  EXPECT_TRUE(x.AllClose(target, 1e-3));
  EXPECT_EQ(adam.step_count(), 2000);
}

TEST(AdamTest, LearningRateDecay) {
  Adam adam(AdamOptions{.learning_rate = 1.0, .lr_decay = 0.5});
  adam.DecayLearningRate();
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.5);
  adam.DecayLearningRate();
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.25);
}

TEST(AdamTest, TrainsXorMlp) {
  // A 2-layer MLP with Adam must solve XOR — a smoke test that the whole
  // backprop + optimizer chain works on a nonlinear problem.
  util::Rng rng(1);
  Sequential model;
  model.Add(std::make_unique<Dense>(2, 8, rng));
  model.Add(std::make_unique<Tanh>());
  model.Add(std::make_unique<Dense>(8, 2, rng));
  Adam adam(AdamOptions{.learning_rate = 0.05});

  la::Matrix x = la::Matrix::FromRows({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  std::vector<int> labels = {0, 1, 1, 0};
  std::vector<uint8_t> mask = {1, 1, 1, 1};

  double loss = 0.0;
  for (int epoch = 0; epoch < 500; ++epoch) {
    la::Matrix logits = model.Forward(x, true);
    la::Matrix grad;
    loss = SoftmaxCrossEntropy(logits, labels, mask, &grad);
    model.ZeroGrad();
    model.Backward(grad);
    adam.Step(model.Parameters(), model.Gradients());
  }
  EXPECT_LT(loss, 0.05);

  la::Matrix probs = Softmax(model.Forward(x, false));
  EXPECT_GT(probs.At(0, 0), 0.5);
  EXPECT_GT(probs.At(1, 1), 0.5);
  EXPECT_GT(probs.At(2, 1), 0.5);
  EXPECT_GT(probs.At(3, 0), 0.5);
}

TEST(GaeTest, ReconstructsCommunityStructure) {
  // Two cliques joined by one bridge edge: after training, within-clique
  // edge probabilities must exceed cross-clique non-edge probabilities.
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      edges.emplace_back(i, j);          // clique A: 0-4
      edges.emplace_back(i + 5, j + 5);  // clique B: 5-9
    }
  }
  edges.emplace_back(0, 5);  // bridge
  la::SparseMatrix adj = la::SparseMatrix::NormalizedAdjacency(10, edges);

  util::Rng rng(2);
  la::Matrix features = la::Matrix::RandomNormal(10, 6, 1.0, rng);
  GaeOptions options;
  options.epochs = 150;
  options.seed = 3;
  Gae gae(&adj, edges, 6, options);
  auto loss = gae.Train(features);
  ASSERT_TRUE(loss.ok());
  EXPECT_LT(loss.value(), 0.6);

  la::Matrix z = gae.Encode(features);
  double intra = 0.0;
  double inter = 0.0;
  int intra_n = 0;
  int inter_n = 0;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      intra += gae.EdgeProbability(z, i, j);
      ++intra_n;
    }
    for (size_t j = 6; j < 10; ++j) {
      inter += gae.EdgeProbability(z, i, j);
      ++inter_n;
    }
  }
  EXPECT_GT(intra / intra_n, inter / inter_n);
}

TEST(GaeTest, RejectsBadInputs) {
  la::SparseMatrix adj = la::SparseMatrix::NormalizedAdjacency(3, {{0, 1}});
  util::Rng rng(4);
  {
    Gae gae(&adj, {{0, 1}}, 4, {});
    la::Matrix wrong_rows = la::Matrix::RandomNormal(2, 4, 1.0, rng);
    EXPECT_FALSE(gae.Train(wrong_rows).ok());
  }
  {
    Gae gae(&adj, {}, 4, {});
    la::Matrix features = la::Matrix::RandomNormal(3, 4, 1.0, rng);
    EXPECT_FALSE(gae.Train(features).ok()) << "no edges";
  }
}

}  // namespace
}  // namespace gale::nn
