// Training-dynamics tests: Adam convergence, GAE edge reconstruction.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "la/sparse_matrix.h"
#include "nn/activations.h"
#include "nn/adam.h"
#include "nn/dense.h"
#include "nn/gae.h"
#include "nn/losses.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace gale::nn {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize ||x - target||^2 over a single parameter matrix.
  la::Matrix x(1, 3, 0.0);
  la::Matrix target = la::Matrix::FromRows({{1.0, -2.0, 3.0}});
  la::Matrix grad(1, 3, 0.0);
  Adam adam(AdamOptions{.learning_rate = 0.05});
  for (int step = 0; step < 2000; ++step) {
    for (size_t i = 0; i < 3; ++i) {
      grad.data()[i] = 2.0 * (x.data()[i] - target.data()[i]);
    }
    adam.Step({&x}, {&grad});
  }
  EXPECT_TRUE(x.AllClose(target, 1e-3));
  EXPECT_EQ(adam.step_count(), 2000);
}

TEST(AdamTest, LearningRateDecay) {
  Adam adam(AdamOptions{.learning_rate = 1.0, .lr_decay = 0.5});
  adam.DecayLearningRate();
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.5);
  adam.DecayLearningRate();
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.25);
}

TEST(AdamTest, TrainsXorMlp) {
  // A 2-layer MLP with Adam must solve XOR — a smoke test that the whole
  // backprop + optimizer chain works on a nonlinear problem.
  util::Rng rng(1);
  Sequential model;
  model.Add(std::make_unique<Dense>(2, 8, rng));
  model.Add(std::make_unique<Tanh>());
  model.Add(std::make_unique<Dense>(8, 2, rng));
  Adam adam(AdamOptions{.learning_rate = 0.05});

  la::Matrix x = la::Matrix::FromRows({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  std::vector<int> labels = {0, 1, 1, 0};
  std::vector<uint8_t> mask = {1, 1, 1, 1};

  double loss = 0.0;
  for (int epoch = 0; epoch < 500; ++epoch) {
    la::Matrix logits = model.Forward(x, true);
    la::Matrix grad;
    loss = SoftmaxCrossEntropy(logits, labels, mask, &grad);
    model.ZeroGrad();
    model.Backward(grad);
    adam.Step(model.Parameters(), model.Gradients());
  }
  EXPECT_LT(loss, 0.05);

  la::Matrix probs = Softmax(model.Forward(x, false));
  EXPECT_GT(probs.At(0, 0), 0.5);
  EXPECT_GT(probs.At(1, 1), 0.5);
  EXPECT_GT(probs.At(2, 1), 0.5);
  EXPECT_GT(probs.At(3, 0), 0.5);
}

TEST(GradAccumulationTest, BackwardAccumulatesUntilZeroGrad) {
  // Dense::Backward adds onto the persistent grad buffers (+=), so two
  // Backward passes without an intervening ZeroGrad must yield exactly
  // twice the gradient of one pass, and ZeroGrad must reset the
  // accumulator. This pins the contract the trainers rely on: ZeroGrad
  // precedes every Backward, so direct accumulation into the zeroed
  // buffers equals assignment bitwise.
  util::Rng rng(7);
  Dense dense(3, 4, rng);
  const la::Matrix x = la::Matrix::RandomNormal(5, 3, 1.0, rng);
  const la::Matrix grad_out = la::Matrix::RandomNormal(5, 4, 1.0, rng);

  dense.Forward(x, /*training=*/true);
  dense.ZeroGrad();
  dense.Backward(grad_out);
  const la::Matrix once = *dense.Gradients()[0];
  const la::Matrix once_bias = *dense.Gradients()[1];

  dense.Backward(grad_out);  // no ZeroGrad: accumulates
  EXPECT_TRUE((once * 2.0).AllClose(*dense.Gradients()[0], 1e-12));
  EXPECT_TRUE((once_bias * 2.0).AllClose(*dense.Gradients()[1], 1e-12));

  dense.ZeroGrad();
  dense.Backward(grad_out);
  for (size_t i = 0; i < once.data().size(); ++i) {
    EXPECT_EQ(once.data()[i], dense.Gradients()[0]->data()[i])
        << "ZeroGrad + Backward must reproduce the single-pass gradient "
           "bitwise, element "
        << i;
  }
}

TEST(GradAccumulationTest, ZeroGradResetsAcrossAdamSteps) {
  // Two identical models: one trained normally, one with a redundant
  // extra ZeroGrad before each step. Identical parameters after several
  // Adam steps proves no gradient leaks across steps.
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  Sequential a;
  a.Add(std::make_unique<Dense>(2, 6, rng_a));
  a.Add(std::make_unique<Tanh>());
  a.Add(std::make_unique<Dense>(6, 2, rng_a));
  Sequential b;
  b.Add(std::make_unique<Dense>(2, 6, rng_b));
  b.Add(std::make_unique<Tanh>());
  b.Add(std::make_unique<Dense>(6, 2, rng_b));
  Adam opt_a(AdamOptions{.learning_rate = 0.05});
  Adam opt_b(AdamOptions{.learning_rate = 0.05});

  la::Matrix x = la::Matrix::FromRows({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  std::vector<int> labels = {0, 1, 1, 0};
  std::vector<uint8_t> mask = {1, 1, 1, 1};
  la::Matrix grad;

  for (int step = 0; step < 10; ++step) {
    SoftmaxCrossEntropy(a.Forward(x, true), labels, mask, &grad);
    a.ZeroGrad();
    a.Backward(grad);
    opt_a.Step(a.Parameters(), a.Gradients());

    SoftmaxCrossEntropy(b.Forward(x, true), labels, mask, &grad);
    b.ZeroGrad();
    b.ZeroGrad();  // redundant: must be harmless
    b.Backward(grad);
    opt_b.Step(b.Parameters(), b.Gradients());
  }
  const auto params_a = a.Parameters();
  const auto params_b = b.Parameters();
  ASSERT_EQ(params_a.size(), params_b.size());
  for (size_t i = 0; i < params_a.size(); ++i) {
    for (size_t j = 0; j < params_a[i]->data().size(); ++j) {
      EXPECT_EQ(params_a[i]->data()[j], params_b[i]->data()[j])
          << "parameter " << i << " diverged at element " << j;
    }
  }
}

TEST(GaeTest, ReconstructsCommunityStructure) {
  // Two cliques joined by one bridge edge: after training, within-clique
  // edge probabilities must exceed cross-clique non-edge probabilities.
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      edges.emplace_back(i, j);          // clique A: 0-4
      edges.emplace_back(i + 5, j + 5);  // clique B: 5-9
    }
  }
  edges.emplace_back(0, 5);  // bridge
  la::SparseMatrix adj = la::SparseMatrix::NormalizedAdjacency(10, edges);

  util::Rng rng(2);
  la::Matrix features = la::Matrix::RandomNormal(10, 6, 1.0, rng);
  GaeOptions options;
  options.epochs = 150;
  options.seed = 3;
  Gae gae(&adj, edges, 6, options);
  auto loss = gae.Train(features);
  ASSERT_TRUE(loss.ok());
  EXPECT_LT(loss.value(), 0.6);

  la::Matrix z = gae.Encode(features);
  double intra = 0.0;
  double inter = 0.0;
  int intra_n = 0;
  int inter_n = 0;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      intra += gae.EdgeProbability(z, i, j);
      ++intra_n;
    }
    for (size_t j = 6; j < 10; ++j) {
      inter += gae.EdgeProbability(z, i, j);
      ++inter_n;
    }
  }
  EXPECT_GT(intra / intra_n, inter / inter_n);
}

TEST(GaeTest, RejectsBadInputs) {
  la::SparseMatrix adj = la::SparseMatrix::NormalizedAdjacency(3, {{0, 1}});
  util::Rng rng(4);
  {
    Gae gae(&adj, {{0, 1}}, 4, {});
    la::Matrix wrong_rows = la::Matrix::RandomNormal(2, 4, 1.0, rng);
    EXPECT_FALSE(gae.Train(wrong_rows).ok());
  }
  {
    Gae gae(&adj, {}, 4, {});
    la::Matrix features = la::Matrix::RandomNormal(3, 4, 1.0, rng);
    EXPECT_FALSE(gae.Train(features).ok()) << "no edges";
  }
}

}  // namespace
}  // namespace gale::nn
