// Tests for the gale::obs observability subsystem: registry/histogram
// determinism, span nesting, parallel-dispatch drop semantics, the
// disabled-mode zero-allocation contract, and golden-file exporter bytes.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace gale::obs {
namespace {

TEST(RegistryTest, FindOrCreateReturnsStableHandles) {
  Registry registry;
  Counter* hits = registry.counter("gale.test.hits");
  hits->Increment();
  hits->Increment(4);
  EXPECT_EQ(registry.counter("gale.test.hits"), hits)
      << "second resolution must return the same node";
  EXPECT_EQ(hits->value(), 5u);

  Gauge* ratio = registry.gauge("gale.test.ratio");
  ratio->Set(0.25);
  ratio->Set(0.75);
  EXPECT_EQ(registry.gauge("gale.test.ratio"), ratio);
  EXPECT_DOUBLE_EQ(ratio->value(), 0.75);

  // Handles stay valid across later registrations (node-based map).
  for (int i = 0; i < 64; ++i) {
    registry.counter("gale.test.other." + std::to_string(i));
  }
  EXPECT_EQ(hits->value(), 5u);
  EXPECT_EQ(registry.counter("gale.test.hits"), hits);
}

TEST(RegistryTest, EraseGaugesWithPrefix) {
  Registry registry;
  registry.gauge("gale.test.family.1")->Set(1.0);
  registry.gauge("gale.test.family.2")->Set(2.0);
  registry.gauge("gale.test.keep")->Set(3.0);
  registry.EraseGaugesWithPrefix("gale.test.family.");
  EXPECT_EQ(registry.gauges().size(), 1u);
  EXPECT_EQ(registry.gauges().begin()->first, "gale.test.keep");
}

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  Histogram h;
  h.Record(0);  // bucket 0
  h.Record(1);  // [1, 2) -> bucket 1
  h.Record(2);  // [2, 4) -> bucket 2
  h.Record(3);  // [2, 4) -> bucket 2
  h.Record(4);  // [4, 8) -> bucket 3
  h.Record(7);  // [4, 8) -> bucket 3
  h.Record(8);  // [8, 16) -> bucket 4
  h.Record(UINT64_MAX);  // top bucket
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 7 + 8 + UINT64_MAX);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[3], 2u);
  EXPECT_EQ(h.buckets()[4], 1u);
  EXPECT_EQ(h.buckets()[64], 1u);
}

TEST(TraceTest, LogicalTimeSpanTreeIsDeterministic) {
  Trace trace(TimeMode::kLogical);
  Registry registry;
  ScopedObs obs(&trace, &registry);
  {
    Span root("root");
    ASSERT_TRUE(root.active());
    {
      Span child("child");
      child.Arg("x", 2.0);
    }
  }
  ASSERT_EQ(trace.num_spans(), 2u);
  EXPECT_STREQ(trace.SpanName(0), "root");
  EXPECT_EQ(trace.SpanParent(0), -1);
  EXPECT_STREQ(trace.SpanName(1), "child");
  EXPECT_EQ(trace.SpanParent(1), 0);
  // Logical clock: one 1 µs tick per recorded open/close, so the numbers
  // are exact: root opens at tick 1, child at 2, child closes at 3, root
  // at 4.
  EXPECT_EQ(trace.SpanStart(0), 1000u);
  EXPECT_EQ(trace.SpanDuration(0), 3000u);
  EXPECT_EQ(trace.SpanStart(1), 2000u);
  EXPECT_EQ(trace.SpanDuration(1), 1000u);
  ASSERT_EQ(trace.SpanArgs(1).size(), 1u);
  EXPECT_DOUBLE_EQ(trace.SpanArgs(1)[0].second, 2.0);

  // Closed spans feed the same-name histogram in the ambient registry.
  ASSERT_EQ(registry.histograms().count("child"), 1u);
  EXPECT_EQ(registry.histograms().at("child").count(), 1u);
  EXPECT_EQ(registry.histograms().at("child").sum(), 1000u);
}

TEST(TraceTest, SpansInsideParallelCallbacksAreDroppedAtEveryThreadCount) {
  for (int threads : {1, 4}) {
    util::ScopedParallelism parallelism(threads);
    Trace trace(TimeMode::kLogical);
    Registry registry;
    ScopedObs obs(&trace, &registry);
    std::vector<double> out(512, 0.0);
    {
      Span outer("outer");
      util::ParallelFor(0, out.size(), 64, [&](size_t b, size_t e) {
        // A span inside a dispatch callback must be inert — on a pool
        // worker AND on the caller's inline shard (including the serial
        // fallback at 1 thread), or the trace would depend on the thread
        // count.
        Span inner("inner");
        EXPECT_FALSE(inner.active());
        for (size_t i = b; i < e; ++i) out[i] = static_cast<double>(i);
      });
    }
    EXPECT_EQ(trace.num_spans(), 1u) << "threads=" << threads;
    EXPECT_STREQ(trace.SpanName(0), "outer");
    EXPECT_EQ(registry.histograms().count("inner"), 0u);
  }
}

// The full workload -> export pipeline produces byte-identical files at
// any GALE_NUM_THREADS in logical-time mode (the acceptance criterion the
// GALE_TRACE_DIR quickstart check pins end to end).
TEST(TraceTest, ExportedBytesAreThreadCountInvariant) {
  auto run_workload = [](int threads) {
    util::ScopedParallelism parallelism(threads);
    Trace trace(TimeMode::kLogical);
    Registry registry;
    ScopedObs obs(&trace, &registry);
    std::vector<double> data(1024, 0.0);
    {
      Span outer("work");
      outer.Arg("items", static_cast<double>(data.size()));
      util::ParallelFor(0, data.size(), 64, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) data[i] = static_cast<double>(i) * 0.5;
      });
      double total = 0.0;
      for (double v : data) total += v;
      registry.gauge("gale.test.total")->Set(total);
      registry.counter("gale.test.rounds")->Increment();
      { Span nested("reduce"); }
    }
    const Report report = Snapshot(&registry, &trace);
    return MetricsJsonLines(report) + ChromeTraceJson(report);
  };
  const std::string serial = run_workload(1);
  const std::string parallel = run_workload(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"work\""), std::string::npos);
}

TEST(SpanTest, DisabledModeIsInertAndAllocationFree) {
  ASSERT_EQ(CurrentTrace(), nullptr)
      << "test requires no ambient obs context";
  const uint64_t before = ObsAllocations();
  for (int i = 0; i < 100; ++i) {
    Span span("gale.test.disabled");
    span.Arg("k", static_cast<double>(i));
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.ElapsedSeconds(), 0.0);
  }
  EXPECT_EQ(ObsAllocations() - before, 0u)
      << "spans without an ambient context must not allocate";
}

TEST(ScopedAmbientContextTest, InstallsOnlyWhenAbsent) {
  ASSERT_EQ(CurrentTrace(), nullptr);
  {
    ScopedAmbientContext ambient;
    Trace* installed = CurrentTrace();
    ASSERT_NE(installed, nullptr);
    ASSERT_NE(CurrentRegistry(), nullptr);
    {
      // A nested ambient context must not re-install: spans opened inside
      // keep nesting into the outer trace.
      ScopedAmbientContext nested;
      EXPECT_EQ(CurrentTrace(), installed);
    }
    EXPECT_EQ(CurrentTrace(), installed);
  }
  EXPECT_EQ(CurrentTrace(), nullptr);
}

TEST(ReportTest, SnapshotAndLookupHelpers) {
  Trace trace(TimeMode::kLogical);
  Registry registry;
  ScopedObs obs(&trace, &registry);
  registry.counter("gale.test.count")->Increment(7);
  registry.gauge("gale.test.gauge")->Set(1.5);
  Span open_span("still-open");
  open_span.Arg("flag", 1.0);
  const Report report = Snapshot(&registry, &trace);

  EXPECT_EQ(report.CounterOr("gale.test.count"), 7u);
  EXPECT_EQ(report.CounterOr("gale.test.absent", 42u), 42u);
  EXPECT_DOUBLE_EQ(report.GaugeOr("gale.test.gauge"), 1.5);
  EXPECT_DOUBLE_EQ(report.GaugeOr("gale.test.absent", -1.0), -1.0);

  ASSERT_EQ(report.spans.size(), 1u);
  const SpanRecord& span = report.spans[0];
  EXPECT_EQ(span.name, "still-open");
  EXPECT_EQ(span.dur_ns, 0u) << "open spans snapshot with zero duration";
  EXPECT_TRUE(span.HasArg("flag"));
  EXPECT_FALSE(span.HasArg("absent"));
  EXPECT_DOUBLE_EQ(span.ArgOr("flag", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(span.ArgOr("absent", -2.0), -2.0);
}

// Golden-file tests: the exporter formats are pinned byte for byte. If
// these fail you changed the export format — update DESIGN.md §9 and any
// downstream line parsers along with the expected strings.
TEST(ExportTest, MetricsJsonLinesGolden) {
  Registry registry;
  registry.counter("gale.test.events")->Increment(3);
  registry.gauge("gale.test.ratio")->Set(0.5);
  Histogram* latency = registry.histogram("gale.test.lat");
  latency->Record(0);
  latency->Record(5);
  latency->Record(5);
  const Report report = Snapshot(&registry, nullptr);
  EXPECT_EQ(
      MetricsJsonLines(report),
      "{\"metric\":\"gale.test.events\",\"type\":\"counter\",\"value\":3}\n"
      "{\"metric\":\"gale.test.ratio\",\"type\":\"gauge\",\"value\":0.5}\n"
      "{\"metric\":\"gale.test.lat\",\"type\":\"histogram\",\"count\":3,"
      "\"sum_ns\":10,\"buckets\":[{\"pow2\":0,\"n\":1},{\"pow2\":3,\"n\":2}]}"
      "\n");
}

TEST(ExportTest, ChromeTraceJsonGolden) {
  Trace trace(TimeMode::kLogical);
  ScopedObs obs(&trace, nullptr);
  {
    Span root("root");
    Span child("child");
    child.Arg("x", 2.0);
  }
  const Report report = Snapshot(nullptr, &trace);
  EXPECT_EQ(ChromeTraceJson(report),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"name\":\"root\",\"cat\":\"gale\",\"ph\":\"X\",\"pid\":0,"
            "\"tid\":0,\"ts\":1.000,\"dur\":3.000,\"args\":{}},\n"
            "{\"name\":\"child\",\"cat\":\"gale\",\"ph\":\"X\",\"pid\":0,"
            "\"tid\":0,\"ts\":2.000,\"dur\":1.000,\"args\":{\"x\":2}}\n"
            "]}\n");
}

}  // namespace
}  // namespace gale::obs
