// Batched-PPR equivalence: ComputeRows' blocked power iteration must
// produce rows byte-identical to the serial Row(v) path for every seed,
// at every batch size and every thread count. The _mt4 ctest entry reruns
// the whole file at GALE_NUM_THREADS=4; the loops below additionally pin
// 1 and 4 threads explicitly so a single run covers both.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "la/sparse_matrix.h"
#include "prop/ppr.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace gale::prop {
namespace {

// A connected random graph with skewed degrees: a path backbone (keeps it
// connected) plus random chords, several through a small set of hub
// nodes so row-block balancing sees real skew.
la::SparseMatrix RandomWalkMatrix(size_t n, size_t extra_edges,
                                  uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  for (size_t e = 0; e < extra_edges; ++e) {
    const size_t u = e % 3 == 0 ? rng.UniformInt(4) : rng.UniformInt(n);
    const size_t v = rng.UniformInt(n);
    if (u != v) edges.emplace_back(u, v);
  }
  return la::SparseMatrix::NormalizedAdjacency(n, edges);
}

std::vector<size_t> TestSeeds(size_t n) {
  // Distinct seeds spread over the graph plus duplicates (ComputeRows
  // must dedup) and both endpoints.
  std::vector<size_t> seeds;
  for (size_t v = 0; v < n; v += 3) seeds.push_back(v);
  seeds.push_back(0);
  seeds.push_back(n - 1);
  seeds.push_back(seeds[1]);  // duplicate mid-list
  return seeds;
}

void ExpectBytesEqual(const std::vector<double>& got,
                      const std::vector<double>& want, size_t seed_node,
                      size_t batch_size, int threads) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                           want.size() * sizeof(double)))
      << "batched PPR row differs from serial Row() for seed " << seed_node
      << " at batch_size=" << batch_size << " threads=" << threads;
}

void CheckBatchedMatchesSerial(const PprOptions& base_options) {
  const size_t n = 97;
  la::SparseMatrix walk = RandomWalkMatrix(n, 180, /*seed=*/1234);
  const std::vector<size_t> seeds = TestSeeds(n);

  // Serial reference rows, computed one by one through the Row(v) miss
  // path at a single thread.
  std::vector<std::vector<double>> reference(n);
  {
    util::ScopedParallelism p(1);
    PprEngine serial(&walk, base_options);
    for (size_t v : seeds) reference[v] = serial.Row(v);
  }

  for (int threads : {1, 4}) {
    util::ScopedParallelism p(threads);
    for (size_t batch_size : {size_t{1}, size_t{7}, size_t{64}}) {
      PprOptions options = base_options;
      options.batch_size = batch_size;
      PprEngine batched(&walk, options);
      batched.ComputeRows(seeds);
      for (size_t v : seeds) {
        ASSERT_TRUE(batched.IsCached(v));
        ExpectBytesEqual(batched.Row(v), reference[v], v, batch_size,
                         threads);
      }
    }
  }
}

TEST(PprBatchEquivalenceTest, MatchesSerialRows) {
  CheckBatchedMatchesSerial(PprOptions{});
}

TEST(PprBatchEquivalenceTest, MatchesSerialRowsLooseTolerance) {
  // A loose tolerance makes columns converge at different sweeps, so the
  // convergence-masking retirement/compaction path is exercised hard.
  PprOptions options;
  options.tolerance = 1e-4;
  CheckBatchedMatchesSerial(options);
}

TEST(PprBatchEquivalenceTest, MatchesSerialRowsIterationCapped) {
  // A tiny iteration cap retires every unconverged column on the final
  // sweep — the serial path's break-at-max semantics.
  PprOptions options;
  options.max_iterations = 3;
  CheckBatchedMatchesSerial(options);
}

TEST(PprBatchEquivalenceTest, MatchesSerialRowsZeroIterations) {
  // max_iterations <= 0: both paths must return the teleport-only e_v.
  PprOptions options;
  options.max_iterations = 0;
  CheckBatchedMatchesSerial(options);
}

TEST(PprBatchEquivalenceTest, PartiallyCachedBatchOnlyComputesMissing) {
  const size_t n = 60;
  la::SparseMatrix walk = RandomWalkMatrix(n, 90, /*seed=*/77);
  PprOptions options;
  options.batch_size = 7;
  PprEngine ppr(&walk, options);

  ppr.Row(5);
  ppr.Row(20);
  EXPECT_EQ(ppr.num_computed_rows(), 2u);

  std::vector<size_t> seeds;
  for (size_t v = 0; v < n; v += 2) seeds.push_back(v);
  ppr.ComputeRows(seeds);
  // 30 even seeds; 5 is odd so only 20 was already cached.
  EXPECT_EQ(ppr.num_computed_rows(), 2u + (seeds.size() - 1));

  PprEngine serial(&walk, PprOptions{});
  for (size_t v : seeds) {
    const std::vector<double> want = serial.Row(v);
    ExpectBytesEqual(ppr.Row(v), want, v, options.batch_size, 0);
  }
}

TEST(PprBatchEquivalenceTest, RepeatedComputeRowsIsIdempotent) {
  const size_t n = 40;
  la::SparseMatrix walk = RandomWalkMatrix(n, 50, /*seed=*/5);
  PprEngine ppr(&walk, PprOptions{.batch_size = 16});
  std::vector<size_t> seeds = {1, 3, 5, 7, 9};
  ppr.ComputeRows(seeds);
  const size_t computed = ppr.num_computed_rows();
  EXPECT_EQ(computed, seeds.size());
  ppr.ComputeRows(seeds);  // all hits: no recomputation
  EXPECT_EQ(ppr.num_computed_rows(), computed);
}

}  // namespace
}  // namespace gale::prop
