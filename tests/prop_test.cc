// Tests for personalized PageRank and label propagation.

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "prop/label_propagation.h"
#include "prop/ppr.h"

namespace gale::prop {
namespace {

la::SparseMatrix PathGraph(size_t n) {
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return la::SparseMatrix::NormalizedAdjacency(n, edges);
}

TEST(PprTest, RowIsAProbabilityLikeVector) {
  la::SparseMatrix walk = PathGraph(6);
  PprEngine ppr(&walk);
  const std::vector<double>& row = ppr.Row(2);
  ASSERT_EQ(row.size(), 6u);
  double sum = 0.0;
  for (double p : row) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  // The symmetric-normalized operator is not stochastic (row sums of S
  // can exceed 1 toward low-degree neighbors), so P's rows are influence
  // vectors rather than exact distributions — but they stay near 1.
  EXPECT_LE(sum, 1.3);
  EXPECT_GT(sum, 0.5);
}

TEST(PprTest, SourceHasLargestMassAndDecaysWithDistance) {
  la::SparseMatrix walk = PathGraph(9);
  PprEngine ppr(&walk);
  const std::vector<double>& row = ppr.Row(4);
  EXPECT_GT(row[4], row[3]);
  EXPECT_GT(row[3], row[2]);
  EXPECT_GT(row[2], row[1]);
  EXPECT_GT(row[5], row[7]);
}

TEST(PprTest, SymmetryOnSymmetricOperator) {
  // P = alpha (I - (1-alpha) S)^{-1} is symmetric when S is.
  la::SparseMatrix walk = PathGraph(7);
  PprEngine ppr(&walk);
  EXPECT_NEAR(ppr.Row(1)[5], ppr.Row(5)[1], 1e-6);
  EXPECT_NEAR(ppr.Row(0)[3], ppr.Row(3)[0], 1e-6);
}

TEST(PprTest, MatchesClosedFormOnTinyGraph) {
  // Two nodes, one edge: S = [[.5, .5], [.5, .5]].
  // P = a (I - (1-a) S)^{-1}. For a = 0.15 solve by hand.
  la::SparseMatrix walk =
      la::SparseMatrix::NormalizedAdjacency(2, {{0, 1}});
  PprOptions options;
  options.alpha = 0.15;
  options.max_iterations = 500;
  options.tolerance = 1e-14;
  PprEngine ppr(&walk, options);
  const double a = 0.15;
  const double b = (1 - a) * 0.5;  // each entry of (1-a)S
  // (I - (1-a)S) = [[1-b, -b], [-b, 1-b]]; inverse = 1/det [[1-b, b],[b, 1-b]]
  const double det = (1 - b) * (1 - b) - b * b;
  const double p00 = a * (1 - b) / det;
  const double p01 = a * b / det;
  const std::vector<double>& row = ppr.Row(0);
  EXPECT_NEAR(row[0], p00, 1e-9);
  EXPECT_NEAR(row[1], p01, 1e-9);
}

TEST(PprTest, CachingCountsRows) {
  la::SparseMatrix walk = PathGraph(5);
  PprEngine ppr(&walk);
  EXPECT_FALSE(ppr.IsCached(2));
  ppr.Row(2);
  EXPECT_TRUE(ppr.IsCached(2));
  EXPECT_EQ(ppr.num_computed_rows(), 1u);
  ppr.Row(2);  // hit
  EXPECT_EQ(ppr.num_computed_rows(), 1u);
  ppr.Row(3);
  EXPECT_EQ(ppr.num_computed_rows(), 2u);
  ppr.ClearCache();
  EXPECT_EQ(ppr.num_cached_rows(), 0u);
}

TEST(PprTest, ClearCacheResetsComputedRowCounter) {
  // Regression: ClearCache used to drop the rows but keep the computed
  // counter, so the Fig. 7f memoization telemetry misreported after a
  // reset (more computations than the live cache generation ever ran).
  la::SparseMatrix walk = PathGraph(6);
  PprEngine ppr(&walk);
  ppr.Row(1);
  ppr.Row(2);
  EXPECT_EQ(ppr.num_computed_rows(), 2u);
  ppr.ClearCache();
  EXPECT_EQ(ppr.num_cached_rows(), 0u);
  EXPECT_EQ(ppr.num_computed_rows(), 0u);
  EXPECT_FALSE(ppr.IsCached(1));
  // The counters restart together: recomputing after the reset counts
  // from zero and the row is identical to the pre-reset one.
  ppr.Row(1);
  EXPECT_EQ(ppr.num_computed_rows(), 1u);
  EXPECT_EQ(ppr.num_cached_rows(), 1u);
}

TEST(PprTest, BatchPrefetchCountsEachRowOnce) {
  la::SparseMatrix walk = PathGraph(8);
  PprEngine ppr(&walk, PprOptions{.batch_size = 3});
  const std::vector<size_t> seeds = {0, 2, 4, 6, 2, 0};  // dups collapse
  ppr.ComputeRows(seeds);
  EXPECT_EQ(ppr.num_computed_rows(), 4u);
  EXPECT_EQ(ppr.num_cached_rows(), 4u);
  for (size_t v : {0u, 2u, 4u, 6u}) EXPECT_TRUE(ppr.IsCached(v));
  EXPECT_FALSE(ppr.IsCached(1));
}

TEST(PprTest, EvictRowsDropsOnlyTheNamedSeeds) {
  la::SparseMatrix walk = PathGraph(8);
  PprEngine ppr(&walk);
  ppr.ComputeRows(std::vector<size_t>{1, 3, 5});
  EXPECT_EQ(ppr.num_cached_rows(), 3u);

  // Evicting a mix of cached and never-cached seeds drops exactly the
  // cached ones; the computed counter keeps its generation total.
  ppr.EvictRows(std::vector<size_t>{3, 6});
  EXPECT_EQ(ppr.num_cached_rows(), 2u);
  EXPECT_TRUE(ppr.IsCached(1));
  EXPECT_FALSE(ppr.IsCached(3));
  EXPECT_TRUE(ppr.IsCached(5));
  EXPECT_EQ(ppr.num_computed_rows(), 3u);
}

TEST(PprTest, RowAfterEvictionIsBitwiseIdentical) {
  la::SparseMatrix walk = PathGraph(8);
  PprEngine ppr(&walk);
  const std::vector<double> before = ppr.Row(4);  // copy before eviction
  ppr.ComputeRows(std::vector<size_t>{2, 6});

  ppr.EvictRows(std::vector<size_t>{4});
  EXPECT_FALSE(ppr.IsCached(4));
  // The recomputed row lands in 4's recycled slot and must be the exact
  // same bytes — eviction is cache churn, never a numeric event.
  const std::vector<double>& after = ppr.Row(4);
  ASSERT_EQ(after.size(), before.size());
  EXPECT_EQ(std::memcmp(after.data(), before.data(),
                        before.size() * sizeof(double)),
            0);
  // Untouched seeds kept their rows through the eviction.
  EXPECT_TRUE(ppr.IsCached(2));
  EXPECT_TRUE(ppr.IsCached(6));
}

TEST(PprTest, EvictedSlotsAreRecycledBeforeGrowth) {
  la::SparseMatrix walk = PathGraph(10);
  PprEngine ppr(&walk);
  ppr.ComputeRows(std::vector<size_t>{0, 1, 2, 3});
  ppr.EvictRows(std::vector<size_t>{1, 2});
  EXPECT_EQ(ppr.num_cached_rows(), 2u);
  // Two inserts refill the freed slots, the third grows the cache.
  ppr.ComputeRows(std::vector<size_t>{5, 6, 7});
  EXPECT_EQ(ppr.num_cached_rows(), 5u);
  for (size_t v : {0u, 3u, 5u, 6u, 7u}) EXPECT_TRUE(ppr.IsCached(v));
  for (size_t v : {1u, 2u}) EXPECT_FALSE(ppr.IsCached(v));
}

TEST(PprTest, DisabledCacheRecomputes) {
  la::SparseMatrix walk = PathGraph(5);
  PprOptions options;
  options.cache_rows = false;
  PprEngine ppr(&walk, options);
  ppr.Row(1);
  ppr.Row(1);
  EXPECT_EQ(ppr.num_computed_rows(), 2u);
  EXPECT_EQ(ppr.num_cached_rows(), 0u);
}

TEST(LabelPropagationTest, RejectsBadInputs) {
  la::SparseMatrix walk = PathGraph(4);
  EXPECT_FALSE(PropagateLabels(walk, {0, 1}, 2).ok()) << "size mismatch";
  EXPECT_FALSE(PropagateLabels(walk, {0, 1, 0, 1}, 0).ok());
}

TEST(LabelPropagationTest, SeedsKeepTheirLabels) {
  la::SparseMatrix walk = PathGraph(7);
  std::vector<int> labels = {0, -1, -1, -1, -1, -1, 1};
  auto soft = PropagateLabels(walk, labels, 2);
  ASSERT_TRUE(soft.ok());
  std::vector<int> hard = HardLabels(soft.value(), -1);
  EXPECT_EQ(hard[0], 0);
  EXPECT_EQ(hard[6], 1);
}

TEST(LabelPropagationTest, LabelsSplitAtTheMiddle) {
  la::SparseMatrix walk = PathGraph(9);
  std::vector<int> labels(9, -1);
  labels[0] = 0;
  labels[8] = 1;
  auto soft = PropagateLabels(walk, labels, 2);
  ASSERT_TRUE(soft.ok());
  std::vector<int> hard = HardLabels(soft.value(), -1);
  EXPECT_EQ(hard[1], 0);
  EXPECT_EQ(hard[2], 0);
  EXPECT_EQ(hard[6], 1);
  EXPECT_EQ(hard[7], 1);
}

TEST(LabelPropagationTest, UnreachableNodesFallBack) {
  // Disconnected pair {3, 4}: no seed reaches them.
  la::SparseMatrix walk = la::SparseMatrix::NormalizedAdjacency(
      5, {{0, 1}, {1, 2}, {3, 4}});
  std::vector<int> labels = {0, -1, -1, -1, -1};
  auto soft = PropagateLabels(walk, labels, 2);
  ASSERT_TRUE(soft.ok());
  std::vector<int> hard = HardLabels(soft.value(), -7);
  EXPECT_EQ(hard[3], -7);
  EXPECT_EQ(hard[4], -7);
  EXPECT_EQ(hard[1], 0);
}

TEST(LabelPropagationTest, MissingClassColumnStaysZero) {
  la::SparseMatrix walk = PathGraph(4);
  std::vector<int> labels = {0, -1, -1, 0};  // no class-1 seed
  auto soft = PropagateLabels(walk, labels, 2);
  ASSERT_TRUE(soft.ok());
  for (size_t v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(soft.value().At(v, 1), 0.0);
  }
}

}  // namespace
}  // namespace gale::prop
