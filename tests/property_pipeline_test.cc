// Property-style tests: pipeline invariants that must hold across seeds,
// error mixes and budgets (parameterized sweeps, not example-based).

#include <gtest/gtest.h>

#include "core/augment.h"
#include "core/gale.h"
#include "detect/oracle.h"
#include "eval/metrics.h"
#include "graph/constraints.h"
#include "graph/error_injector.h"
#include "graph/synthetic_dataset.h"

namespace gale {
namespace {

struct Pipeline {
  graph::SyntheticDataset dataset;
  std::vector<graph::Constraint> constraints;
  graph::AttributedGraph dirty;
  graph::ErrorGroundTruth truth;
};

Pipeline BuildPipeline(uint64_t seed, std::vector<double> mix,
                       double detectable, double node_rate = 0.08) {
  graph::SyntheticConfig config;
  config.num_nodes = 900;
  config.num_edges = 1100;
  config.seed = seed;
  auto ds = graph::GenerateSynthetic(config);
  EXPECT_TRUE(ds.ok());
  graph::ConstraintMiner miner({.min_support = 10, .min_confidence = 0.8});
  auto constraints = miner.Mine(ds.value().graph);
  EXPECT_TRUE(constraints.ok());
  Pipeline p{std::move(ds).value(), std::move(constraints).value(), {}, {}};
  p.dirty = p.dataset.graph.Clone();
  graph::ErrorInjectorConfig inject;
  inject.node_error_rate = node_rate;
  inject.type_mix = std::move(mix);
  inject.detectable_rate = detectable;
  inject.seed = seed ^ 0x515;
  auto truth = graph::ErrorInjector(inject).Inject(p.dirty, p.constraints);
  EXPECT_TRUE(truth.ok());
  p.truth = std::move(truth).value();
  return p;
}

// --- invariant: ground truth exactly describes the dirty/clean diff ---

class GroundTruthInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroundTruthInvariantTest, DirtyCleanDiffMatchesTruth) {
  Pipeline p = BuildPipeline(GetParam(), {1.0 / 3, 1.0 / 3, 1.0 / 3}, 0.5);
  // Every differing (node, attr) pair must be recorded, and vice versa.
  std::set<std::pair<size_t, size_t>> recorded;
  for (const graph::InjectedError& e : p.truth.errors) {
    recorded.insert({e.node, e.attr});
  }
  std::set<std::pair<size_t, size_t>> differing;
  for (size_t v = 0; v < p.dirty.num_nodes(); ++v) {
    for (size_t a = 0; a < p.dirty.num_attributes(v); ++a) {
      if (p.dirty.value(v, a) != p.dataset.graph.value(v, a)) {
        differing.insert({v, a});
      }
    }
  }
  EXPECT_EQ(recorded, differing);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroundTruthInvariantTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- invariant: with detectable-only injection, the ensemble oracle's
// recall stays well above its recall on subtle-only injection ---

class DetectableGapTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetectableGapTest, EnsembleOracleGapBetweenRegimes) {
  auto recall_of = [&](double detectable) {
    Pipeline p = BuildPipeline(GetParam(), {1.0 / 3, 1.0 / 3, 1.0 / 3},
                               detectable);
    auto library = detect::DetectorLibrary::MakeDefault(p.constraints);
    EXPECT_TRUE(library.RunAll(p.dirty).ok());
    size_t caught = 0;
    size_t total = 0;
    for (size_t v = 0; v < p.dirty.num_nodes(); ++v) {
      if (!p.truth.is_error[v]) continue;
      ++total;
      caught += library.NodeFlagged(v);
    }
    return total == 0 ? 0.0
                      : static_cast<double>(caught) /
                            static_cast<double>(total);
  };
  const double high = recall_of(1.0);
  const double low = recall_of(0.0);
  EXPECT_GT(high, low + 0.25) << "high=" << high << " low=" << low;
  EXPECT_GT(high, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectableGapTest,
                         ::testing::Values(11, 12, 13));

// --- invariant: every error-mix produces only errors of feasible types ---

struct MixCase {
  std::vector<double> mix;
  graph::ErrorType dominant;
};

class MixFeasibilityTest : public ::testing::TestWithParam<MixCase> {};

TEST_P(MixFeasibilityTest, DominantTypeDominatesFeasibleSlots) {
  Pipeline p = BuildPipeline(31, GetParam().mix, 0.5, 0.15);
  size_t dominant_count = 0;
  for (const graph::InjectedError& e : p.truth.errors) {
    dominant_count += (e.type == GetParam().dominant);
    // Type/kind feasibility: outliers only on numeric slots, the other
    // two only on text slots.
    const graph::ValueKind kind = p.dirty.attribute_def(e.node, e.attr).kind;
    if (e.type == graph::ErrorType::kOutlier) {
      EXPECT_EQ(kind, graph::ValueKind::kNumeric);
    } else {
      EXPECT_EQ(kind, graph::ValueKind::kText);
    }
  }
  ASSERT_FALSE(p.truth.errors.empty());
  // The requested dominant class must be strongly represented. Outliers
  // are feasibility-capped by the schema (2 numeric of 7 attributes), so
  // their achievable share is lower than for the text-slot error types.
  const double floor =
      GetParam().dominant == graph::ErrorType::kOutlier ? 0.20 : 0.33;
  EXPECT_GT(static_cast<double>(dominant_count) /
                static_cast<double>(p.truth.errors.size()),
            floor);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, MixFeasibilityTest,
    ::testing::Values(
        MixCase{{0.5, 0.25, 0.25}, graph::ErrorType::kConstraintViolation},
        MixCase{{0.25, 0.5, 0.25}, graph::ErrorType::kOutlier},
        MixCase{{0.25, 0.25, 0.5}, graph::ErrorType::kStringNoise}));

// --- invariant: the GALE loop respects its budget and never queries
// excluded or already-labeled nodes, across budgets ---

class BudgetInvariantTest
    : public ::testing::TestWithParam<std::pair<size_t, int>> {};

TEST_P(BudgetInvariantTest, QueriesExactlyTk) {
  const auto [k, T] = GetParam();
  Pipeline p = BuildPipeline(41, {1.0 / 3, 1.0 / 3, 1.0 / 3}, 0.5);
  auto library = detect::DetectorLibrary::MakeDefault(p.constraints);
  ASSERT_TRUE(library.RunAll(p.dirty).ok());
  core::AugmentOptions augment;
  augment.gae.epochs = 15;
  auto features = core::GAugment(p.dirty, p.constraints, augment);
  ASSERT_TRUE(features.ok());

  core::GaleConfig config;
  config.sgan.train_epochs = 30;
  config.sgan.update_epochs = 5;
  config.local_budget = k;
  config.iterations = T;
  config.annotate_queries = false;
  core::Gale gale(&p.dirty, &library, &p.constraints, config);
  detect::GroundTruthOracle oracle(&p.truth);
  auto result = gale.Run(features.value().x_real,
                         features.value().x_synthetic, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(oracle.num_queries(), k * static_cast<size_t>(T));
  // Oracle-labeled example count matches (no node queried twice).
  size_t labeled = 0;
  for (int l : result.value().example_labels) {
    labeled += (l == core::kLabelError || l == core::kLabelCorrect);
  }
  EXPECT_EQ(labeled, k * static_cast<size_t>(T));
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetInvariantTest,
                         ::testing::Values(std::pair<size_t, int>{4, 2},
                                           std::pair<size_t, int>{8, 3},
                                           std::pair<size_t, int>{16, 2}));

// --- invariant: metrics are bounded and consistent ---

TEST(MetricsInvariantTest, BoundsAndConsistencyOnRandomData) {
  util::Rng rng(51);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 50 + rng.UniformInt(100);
    std::vector<uint8_t> predicted(n);
    std::vector<uint8_t> truth(n);
    std::vector<uint8_t> mask(n);
    for (size_t i = 0; i < n; ++i) {
      predicted[i] = rng.Bernoulli(0.3);
      truth[i] = rng.Bernoulli(0.2);
      mask[i] = rng.Bernoulli(0.7);
    }
    const eval::Metrics m = eval::ComputeMetrics(predicted, truth, mask);
    EXPECT_GE(m.precision, 0.0);
    EXPECT_LE(m.precision, 1.0);
    EXPECT_GE(m.recall, 0.0);
    EXPECT_LE(m.recall, 1.0);
    EXPECT_GE(m.f1, 0.0);
    EXPECT_LE(m.f1, 1.0);
    // F1 is the harmonic mean: between min and max of P and R.
    if (m.precision > 0.0 && m.recall > 0.0) {
      EXPECT_LE(m.f1, std::max(m.precision, m.recall) + 1e-12);
      EXPECT_GE(m.f1, std::min(m.precision, m.recall) - 1e-12);
    }
  }
}

}  // namespace
}  // namespace gale
