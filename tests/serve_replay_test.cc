// RequestBatcher replay harness: concurrent callers at several batch
// sizes and arrival orders, memcmp'd against a serial one-node-at-a-time
// reference. Runs under GALE_OBS_LOGICAL_TIME=1 (ctest sets it), and the
// _mt4 ctest leg re-runs the whole file with GALE_NUM_THREADS=4 —
// per-node scores must be bitwise identical in every configuration.

#include "serve/batcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/sgan.h"
#include "la/matrix.h"
#include "la/sparse_matrix.h"
#include "serve/snapshot.h"
#include "util/rng.h"
#include "util/status.h"

namespace gale::serve {
namespace {

constexpr size_t kNodes = 120;
constexpr size_t kDim = 5;

ScoringSnapshot MakeSnapshot() {
  la::Matrix x(kNodes, kDim);
  util::Rng rng(77);
  for (size_t r = 0; r < kNodes; ++r) {
    for (size_t c = 0; c < kDim; ++c) {
      *(x.RowPtr(r) + c) = rng.Uniform(-1.0, 1.0);
    }
  }
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t v = 0; v < kNodes; ++v) {
    edges.emplace_back(v, (v + 1) % kNodes);
    edges.emplace_back(v, (v + 11) % kNodes);
  }
  std::vector<int> labels(kNodes, core::kUnlabeled);
  labels[2] = core::kLabelError;
  labels[50] = core::kLabelError;
  labels[9] = core::kLabelCorrect;

  core::SganConfig config;
  config.hidden_dim = 9;
  config.embedding_dim = 6;
  config.seed = 99;
  core::Sgan sgan(kDim, config);

  auto snap = ScoringSnapshot::FromParts(
      sgan.ExportDiscriminator(), std::move(x),
      la::SparseMatrix::NormalizedAdjacency(kNodes, edges),
      std::move(labels));
  EXPECT_TRUE(snap.ok()) << snap.status();
  return std::move(snap).value();
}

// The serial reference: every node scored alone, one at a time.
std::vector<NodeScore> SerialReference(const ScoringSnapshot& snap) {
  SnapshotScorer scorer(&snap, 1);
  std::vector<NodeScore> ref(kNodes);
  for (size_t v = 0; v < kNodes; ++v) {
    std::vector<size_t> one{v};
    scorer.ScoreInto(one, &ref[v]);
  }
  return ref;
}

// The request mix one caller thread submits: overlapping windows (so
// concurrent requests share nodes and exercise the dedup), plus repeats
// inside a single request.
std::vector<std::vector<size_t>> RequestsForThread(size_t thread,
                                                   bool reversed) {
  std::vector<std::vector<size_t>> requests;
  for (size_t j = 0; j < 6; ++j) {
    std::vector<size_t> ids;
    const size_t base = (thread * 37 + j * 13) % kNodes;
    for (size_t i = 0; i < 9; ++i) ids.push_back((base + i * 5) % kNodes);
    ids.push_back(ids.front());  // in-request duplicate
    requests.push_back(std::move(ids));
  }
  if (reversed) {
    std::reverse(requests.begin(), requests.end());
    for (auto& ids : requests) std::reverse(ids.begin(), ids.end());
  }
  return requests;
}

void RunReplay(const ScoringSnapshot& snap,
               const std::vector<NodeScore>& ref, size_t max_batch,
               bool reversed) {
  ServeOptions options;
  options.max_batch = max_batch;
  options.max_wait_micros = 50;
  RequestBatcher batcher(&snap, options);

  constexpr size_t kCallers = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  for (size_t t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (const std::vector<size_t>& ids : RequestsForThread(t, reversed)) {
        ScoreRequest request;
        request.node_ids = ids;
        auto scores = batcher.Score(request);
        if (!scores.ok() || scores.value().size() != ids.size()) {
          mismatches.fetch_add(1000);
          continue;
        }
        for (size_t i = 0; i < ids.size(); ++i) {
          if (std::memcmp(&scores.value()[i], &ref[ids[i]],
                          sizeof(NodeScore)) != 0) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& c : callers) c.join();
  batcher.Stop();
  EXPECT_EQ(mismatches.load(), 0)
      << "max_batch=" << max_batch << " reversed=" << reversed;

  const obs::Report report = batcher.ObsReport();
  EXPECT_EQ(report.CounterOr("gale.serve.requests"), kCallers * 6);
  EXPECT_EQ(report.CounterOr("gale.serve.nodes"), kCallers * 6 * 10);
  EXPECT_EQ(report.CounterOr("gale.serve.rejected"), 0u);
}

TEST(ServeReplayTest, BatchedScoresMatchSerialReference) {
  ScoringSnapshot snap = MakeSnapshot();
  const std::vector<NodeScore> ref = SerialReference(snap);
  for (size_t max_batch : {size_t{1}, size_t{8}, size_t{64}}) {
    for (bool reversed : {false, true}) {
      RunReplay(snap, ref, max_batch, reversed);
    }
  }
}

TEST(ServeReplayTest, DedupScoresSharedNodesOnce) {
  ScoringSnapshot snap = MakeSnapshot();
  ServeOptions options;
  options.max_batch = 16;
  options.max_wait_micros = 0;
  RequestBatcher batcher(&snap, options);

  // One request repeating a single node: the batch dedups it to one slot.
  ScoreRequest request;
  request.node_ids.assign(6, 42);
  auto scores = batcher.Score(request);
  ASSERT_TRUE(scores.ok()) << scores.status();
  ASSERT_EQ(scores.value().size(), 6u);
  for (size_t i = 1; i < 6; ++i) {
    EXPECT_EQ(std::memcmp(&scores.value()[i], &scores.value()[0],
                          sizeof(NodeScore)),
              0);
  }
  batcher.Stop();

  const obs::Report report = batcher.ObsReport();
  EXPECT_EQ(report.CounterOr("gale.serve.nodes"), 6u);
  const auto hist = report.histograms.find("gale.serve.batch_size");
  ASSERT_NE(hist, report.histograms.end());
  EXPECT_EQ(hist->second.count, 1u) << "one request -> one batch";
  EXPECT_EQ(hist->second.sum, 1u) << "six duplicate ids -> one scored node";
}

TEST(ServeReplayTest, OversizedRequestIsRejectedAsOverloaded) {
  ScoringSnapshot snap = MakeSnapshot();
  ServeOptions options;
  options.max_batch = 4;
  options.queue_capacity = 4;
  RequestBatcher batcher(&snap, options);

  // More nodes than the queue can ever hold: deterministic rejection
  // regardless of worker timing.
  ScoreRequest request;
  for (size_t v = 0; v < 5; ++v) request.node_ids.push_back(v);
  auto rejected = batcher.Score(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kOverloaded);

  // A fitting request still goes through afterwards.
  request.node_ids.resize(3);
  EXPECT_TRUE(batcher.Score(request).ok());
  batcher.Stop();
  EXPECT_EQ(batcher.ObsReport().CounterOr("gale.serve.rejected"), 1u);
}

TEST(ServeReplayTest, ScoreAfterStopIsFailedPrecondition) {
  ScoringSnapshot snap = MakeSnapshot();
  RequestBatcher batcher(&snap);
  ScoreRequest request;
  request.node_ids = {1, 2};
  EXPECT_TRUE(batcher.Score(request).ok());
  batcher.Stop();
  auto late = batcher.Score(request);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), util::StatusCode::kFailedPrecondition);
  batcher.Stop();  // idempotent
}

TEST(ServeReplayTest, OutOfRangeNodeIsInvalidArgument) {
  ScoringSnapshot snap = MakeSnapshot();
  RequestBatcher batcher(&snap);
  ScoreRequest request;
  request.node_ids = {kNodes};
  auto bad = batcher.Score(request);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ServeReplayTest, InvalidOptionsSurfaceThroughScore) {
  ScoringSnapshot snap = MakeSnapshot();
  ServeOptions options;
  options.max_batch = 0;
  ASSERT_EQ(options.Validate().status().code(),
            util::StatusCode::kInvalidArgument);
  RequestBatcher batcher(&snap, options);
  ScoreRequest request;
  request.node_ids = {0};
  auto bad = batcher.Score(request);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ServeReplayTest, EmptyRequestSucceedsWithNoScores) {
  ScoringSnapshot snap = MakeSnapshot();
  RequestBatcher batcher(&snap);
  auto empty = batcher.Score(ScoreRequest{});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(ServeReplayTest, ReportCarriesBatchSpansAndGauge) {
  ScoringSnapshot snap = MakeSnapshot();
  ServeOptions options;
  options.max_wait_micros = 0;
  RequestBatcher batcher(&snap, options);
  ScoreRequest request;
  request.node_ids = {3, 7, 7, 11};
  ASSERT_TRUE(batcher.Score(request).ok());
  batcher.Stop();

  const obs::Report report = batcher.ObsReport();
  size_t batch_spans = 0;
  for (const obs::SpanRecord& span : report.spans) {
    batch_spans += span.name == "gale.serve.batch";
  }
  EXPECT_GE(batch_spans, 1u);
  // The span auto-histogram shares the span's name.
  EXPECT_NE(report.histograms.find("gale.serve.batch"),
            report.histograms.end());
  EXPECT_NE(report.gauges.find("gale.serve.queue_depth"),
            report.gauges.end());
}

}  // namespace
}  // namespace gale::serve
