// ScoringSnapshot: build validation, bitwise equivalence with the SGAN
// forward, allocation-free scoring, and the versioned binary format
// (round-trip byte identity + coded rejection of corrupt files).

#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/sgan.h"
#include "la/matrix.h"
#include "la/sparse_matrix.h"
#include "prop/ppr.h"
#include "util/rng.h"
#include "util/status.h"

namespace gale::serve {
namespace {

constexpr size_t kNodes = 40;
constexpr size_t kDim = 6;

la::Matrix MakeFeatures(uint64_t seed) {
  la::Matrix x(kNodes, kDim);
  util::Rng rng(seed);
  for (size_t r = 0; r < kNodes; ++r) {
    for (size_t c = 0; c < kDim; ++c) {
      *(x.RowPtr(r) + c) = rng.Uniform(-1.0, 1.0);
    }
  }
  return x;
}

la::SparseMatrix MakeWalk() {
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t v = 0; v < kNodes; ++v) {
    edges.emplace_back(v, (v + 1) % kNodes);      // ring
    edges.emplace_back(v, (v + 7) % kNodes);      // chords
  }
  return la::SparseMatrix::NormalizedAdjacency(kNodes, edges);
}

std::vector<int> MakeLabels() {
  std::vector<int> labels(kNodes, core::kUnlabeled);
  labels[3] = core::kLabelError;
  labels[17] = core::kLabelError;
  labels[5] = core::kLabelCorrect;
  labels[29] = core::kLabelCorrect;
  return labels;
}

core::DiscriminatorSnapshot MakeDiscriminator(uint64_t seed) {
  core::SganConfig config;
  config.hidden_dim = 10;
  config.embedding_dim = 7;
  config.seed = seed;
  core::Sgan sgan(kDim, config);
  return sgan.ExportDiscriminator();
}

ScoringSnapshot MakeSnapshot(uint64_t seed = 11) {
  auto snap = ScoringSnapshot::FromParts(MakeDiscriminator(seed),
                                         MakeFeatures(seed ^ 0x9), MakeWalk(),
                                         MakeLabels(), 0.2);
  EXPECT_TRUE(snap.ok()) << snap.status();
  return std::move(snap).value();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

TEST(ScoringSnapshotTest, FromPartsRejectsBadShapes) {
  // Feature-dim mismatch with the discriminator's input layer.
  auto wrong_dim = ScoringSnapshot::FromParts(
      MakeDiscriminator(1), la::Matrix(kNodes, kDim + 1), MakeWalk(),
      MakeLabels());
  ASSERT_FALSE(wrong_dim.ok());
  EXPECT_EQ(wrong_dim.status().code(), util::StatusCode::kInvalidArgument);

  // Walk matrix not n x n.
  std::vector<std::pair<size_t, size_t>> edges{{0, 1}};
  auto wrong_walk = ScoringSnapshot::FromParts(
      MakeDiscriminator(1), MakeFeatures(1),
      la::SparseMatrix::NormalizedAdjacency(kNodes / 2, edges), MakeLabels());
  ASSERT_FALSE(wrong_walk.ok());
  EXPECT_EQ(wrong_walk.status().code(), util::StatusCode::kInvalidArgument);

  // Label vector of the wrong length.
  auto wrong_labels = ScoringSnapshot::FromParts(
      MakeDiscriminator(1), MakeFeatures(1), MakeWalk(),
      std::vector<int>(kNodes - 1, core::kUnlabeled));
  ASSERT_FALSE(wrong_labels.ok());
  EXPECT_EQ(wrong_labels.status().code(), util::StatusCode::kInvalidArgument);

  // Empty discriminator.
  auto no_layers = ScoringSnapshot::FromParts(
      core::DiscriminatorSnapshot{}, MakeFeatures(1), MakeWalk(),
      MakeLabels());
  ASSERT_FALSE(no_layers.ok());
  EXPECT_EQ(no_layers.status().code(), util::StatusCode::kInvalidArgument);

  // ppr_alpha outside (0, 1).
  auto bad_alpha = ScoringSnapshot::FromParts(
      MakeDiscriminator(1), MakeFeatures(1), MakeWalk(), MakeLabels(), 1.5);
  ASSERT_FALSE(bad_alpha.ok());
  EXPECT_EQ(bad_alpha.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ScoringSnapshotTest, ScorerMatchesSganForwardBitwise) {
  core::SganConfig config;
  config.hidden_dim = 10;
  config.embedding_dim = 7;
  config.seed = 21;
  core::Sgan sgan(kDim, config);
  const la::Matrix x = MakeFeatures(33);

  auto snap = ScoringSnapshot::FromParts(sgan.ExportDiscriminator(), x,
                                         MakeWalk(), MakeLabels());
  ASSERT_TRUE(snap.ok()) << snap.status();

  const la::Matrix probs = sgan.PredictProbabilities(x);
  SnapshotScorer scorer(&snap.value(), kNodes);
  std::vector<size_t> all(kNodes);
  for (size_t v = 0; v < kNodes; ++v) all[v] = v;
  std::vector<NodeScore> scores(kNodes);
  scorer.ScoreInto(all, scores.data());

  for (size_t v = 0; v < kNodes; ++v) {
    // Bitwise, not approximate: the scorer replays the exact eval forward.
    EXPECT_EQ(scores[v].p_error, *(probs.RowPtr(v) + 0)) << "node " << v;
    EXPECT_EQ(scores[v].p_correct, *(probs.RowPtr(v) + 1)) << "node " << v;
  }
}

TEST(ScoringSnapshotTest, ScorerIsBatchCompositionInvariant) {
  ScoringSnapshot snap = MakeSnapshot();
  SnapshotScorer big(&snap, kNodes);
  SnapshotScorer one(&snap, 1);

  std::vector<size_t> all(kNodes);
  for (size_t v = 0; v < kNodes; ++v) all[v] = v;
  std::vector<NodeScore> batched(kNodes);
  big.ScoreInto(all, batched.data());

  for (size_t v = 0; v < kNodes; ++v) {
    std::vector<size_t> single{v};
    NodeScore s;
    one.ScoreInto(single, &s);
    EXPECT_EQ(std::memcmp(&s, &batched[v], sizeof(NodeScore)), 0)
        << "node " << v << " depends on its batch";
  }
}

TEST(ScoringSnapshotTest, ScoreIntoIsAllocationFreeAfterWarmup) {
  ScoringSnapshot snap = MakeSnapshot();
  SnapshotScorer scorer(&snap, 8);
  std::vector<size_t> nodes{1, 4, 9, 16, 25, 36};
  std::vector<NodeScore> scores(nodes.size());
  scorer.ScoreInto(nodes, scores.data());  // warm (ctor already warmed too)

  const uint64_t before = la::BufferAllocations();
  scorer.ScoreInto(nodes, scores.data());
  std::vector<size_t> smaller{2, 3};
  scorer.ScoreInto(smaller, scores.data());
  EXPECT_EQ(la::BufferAllocations(), before)
      << "steady-state ScoreInto must not allocate la buffers";
}

TEST(ScoringSnapshotTest, InfluenceMatchesManualPprSum) {
  ScoringSnapshot snap = MakeSnapshot();
  const la::SparseMatrix walk = MakeWalk();
  prop::PprEngine engine(&walk, prop::PprOptions{.alpha = 0.2});
  std::vector<double> expected(kNodes, 0.0);
  for (size_t u : {size_t{3}, size_t{17}}) {
    const std::vector<double>& row = engine.Row(u);
    for (size_t v = 0; v < kNodes; ++v) expected[v] += row[v];
  }
  ASSERT_EQ(snap.error_influence().size(), kNodes);
  for (size_t v = 0; v < kNodes; ++v) {
    EXPECT_EQ(snap.error_influence()[v], expected[v]) << "node " << v;
  }
}

TEST(ScoringSnapshotTest, FromPartsWithInfluenceMatchesBakedSnapshot) {
  // Precompute the influence exactly the way FromParts bakes it...
  const la::SparseMatrix walk = MakeWalk();
  prop::PprEngine engine(&walk, prop::PprOptions{.alpha = 0.2});
  std::vector<double> influence(kNodes, 0.0);
  for (size_t u : {size_t{3}, size_t{17}}) {
    const std::vector<double>& row = engine.Row(u);
    for (size_t v = 0; v < kNodes; ++v) influence[v] += row[v];
  }
  auto adopted = ScoringSnapshot::FromPartsWithInfluence(
      MakeDiscriminator(11), MakeFeatures(11 ^ 0x9), MakeWalk(), MakeLabels(),
      std::move(influence), 0.2);
  ASSERT_TRUE(adopted.ok()) << adopted.status();

  // ...and the two construction paths must serialize byte-identically
  // (the store's incremental publish leans on this).
  ScoringSnapshot baked = MakeSnapshot(11);
  const std::string path_baked = TempPath("snap_baked.bin");
  const std::string path_adopted = TempPath("snap_adopted.bin");
  ASSERT_TRUE(baked.Save(path_baked).ok());
  ASSERT_TRUE(adopted.value().Save(path_adopted).ok());
  const std::string bytes_baked = ReadFileBytes(path_baked);
  const std::string bytes_adopted = ReadFileBytes(path_adopted);
  ASSERT_EQ(bytes_baked.size(), bytes_adopted.size());
  EXPECT_EQ(std::memcmp(bytes_baked.data(), bytes_adopted.data(),
                        bytes_baked.size()),
            0);
}

TEST(ScoringSnapshotTest, FromPartsWithInfluenceRejectsWrongLength) {
  auto short_vec = ScoringSnapshot::FromPartsWithInfluence(
      MakeDiscriminator(1), MakeFeatures(1), MakeWalk(), MakeLabels(),
      std::vector<double>(kNodes - 1, 0.0));
  ASSERT_FALSE(short_vec.ok());
  EXPECT_EQ(short_vec.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ScoringSnapshotTest, SaveLoadRoundTripIsByteIdentical) {
  ScoringSnapshot snap = MakeSnapshot();
  const std::string path_a = TempPath("snap_a.bin");
  const std::string path_b = TempPath("snap_b.bin");
  ASSERT_TRUE(snap.Save(path_a).ok());

  auto loaded = ScoringSnapshot::Load(path_a);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const ScoringSnapshot& back = loaded.value();

  // Field-level identity.
  ASSERT_EQ(back.num_nodes(), snap.num_nodes());
  ASSERT_EQ(back.feature_dim(), snap.feature_dim());
  EXPECT_EQ(std::memcmp(back.features().RowPtr(0), snap.features().RowPtr(0),
                        kNodes * kDim * sizeof(double)),
            0);
  EXPECT_EQ(back.example_labels(), snap.example_labels());
  EXPECT_EQ(back.error_influence(), snap.error_influence());
  EXPECT_EQ(back.ppr_alpha(), snap.ppr_alpha());
  ASSERT_EQ(back.discriminator().weights.size(),
            snap.discriminator().weights.size());
  EXPECT_EQ(back.discriminator().leaky_slope,
            snap.discriminator().leaky_slope);
  ASSERT_EQ(back.walk().nnz(), snap.walk().nnz());
  for (size_t k = 0; k < snap.walk().nnz(); ++k) {
    ASSERT_EQ(back.walk().ColIndex(k), snap.walk().ColIndex(k));
    ASSERT_EQ(back.walk().Value(k), snap.walk().Value(k));
  }

  // Byte-level identity: saving the loaded snapshot reproduces the file.
  ASSERT_TRUE(back.Save(path_b).ok());
  const std::string bytes_a = ReadFileBytes(path_a);
  const std::string bytes_b = ReadFileBytes(path_b);
  ASSERT_EQ(bytes_a.size(), bytes_b.size());
  EXPECT_EQ(std::memcmp(bytes_a.data(), bytes_b.data(), bytes_a.size()), 0);

  // And the reloaded snapshot scores identically.
  SnapshotScorer scorer_a(&snap, 4);
  SnapshotScorer scorer_b(&back, 4);
  std::vector<size_t> nodes{0, 13, 39};
  std::vector<NodeScore> sa(3);
  std::vector<NodeScore> sb(3);
  scorer_a.ScoreInto(nodes, sa.data());
  scorer_b.ScoreInto(nodes, sb.data());
  EXPECT_EQ(std::memcmp(sa.data(), sb.data(), 3 * sizeof(NodeScore)), 0);
}

TEST(ScoringSnapshotTest, LoadRejectsMissingFile) {
  auto missing = ScoringSnapshot::Load(TempPath("does_not_exist.bin"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

TEST(ScoringSnapshotTest, LoadRejectsTruncatedFile) {
  ScoringSnapshot snap = MakeSnapshot();
  const std::string path = TempPath("snap_trunc.bin");
  ASSERT_TRUE(snap.Save(path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes.resize(bytes.size() / 2);
  WriteFileBytes(path, bytes);
  auto truncated = ScoringSnapshot::Load(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), util::StatusCode::kDataLoss);

  // Shorter than even the header.
  bytes.resize(4);
  WriteFileBytes(path, bytes);
  auto stub = ScoringSnapshot::Load(path);
  ASSERT_FALSE(stub.ok());
  EXPECT_EQ(stub.status().code(), util::StatusCode::kDataLoss);
}

TEST(ScoringSnapshotTest, LoadRejectsBitFlips) {
  ScoringSnapshot snap = MakeSnapshot();
  const std::string path = TempPath("snap_flip.bin");
  ASSERT_TRUE(snap.Save(path).ok());
  const std::string original = ReadFileBytes(path);

  // Flip one bit in a few payload positions; the checksum must catch all.
  for (size_t pos : {size_t{48}, original.size() / 2, original.size() - 1}) {
    std::string bytes = original;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x10);
    WriteFileBytes(path, bytes);
    auto corrupt = ScoringSnapshot::Load(path);
    ASSERT_FALSE(corrupt.ok()) << "flip at " << pos;
    EXPECT_EQ(corrupt.status().code(), util::StatusCode::kDataLoss)
        << "flip at " << pos;
  }

  // Bad magic is also kDataLoss.
  std::string bytes = original;
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  auto bad_magic = ScoringSnapshot::Load(path);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.status().code(), util::StatusCode::kDataLoss);
}

TEST(ScoringSnapshotTest, LoadRejectsFutureFormatVersion) {
  ScoringSnapshot snap = MakeSnapshot();
  const std::string path = TempPath("snap_version.bin");
  ASSERT_TRUE(snap.Save(path).ok());
  std::string bytes = ReadFileBytes(path);
  // The version field sits right after the 8-byte magic.
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof version);
  ASSERT_EQ(version, ScoringSnapshot::kFormatVersion);
  version = ScoringSnapshot::kFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &version, sizeof version);
  WriteFileBytes(path, bytes);
  auto future = ScoringSnapshot::Load(path);
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.status().code(), util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace gale::serve
