// The SIMD substrate's whole contract is that it changes nothing but
// time: every vectorized kernel must be bitwise identical to the scalar
// fallback, at every thread count, on every ISA the machine can run,
// including non-multiple-of-lane-width tails and the *Into workspace
// forms. This test pins that by re-running each kernel under
// simd::ScopedIsaOverride and comparing raw doubles (ASSERT_EQ, never
// AllClose). The scalar results are the reference — the same numbers a
// GALE_SIMD=OFF build produces (tools/check_all.sh's simdoff leg keeps
// that build green). Run both plain and as the _mt4 ctest entry
// (GALE_NUM_THREADS=4) so the lane argument composes with the thread
// sharding one.

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "la/matrix.h"
#include "la/simd.h"
#include "la/sparse_matrix.h"
#include "nn/activations.h"
#include "nn/adam.h"
#include "prop/ppr.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace gale {
namespace {

using la::simd::Isa;

constexpr int kThreadCounts[] = {1, 4};
constexpr double kPoison = -777.25;  // exactly representable

// Every ISA worth pinning on this machine: scalar always, plus whatever
// the runtime guard admits (ScopedIsaOverride degrades unsupported
// requests, so listing avx2 on an sse2-only box just re-tests sse2 —
// harmless, never wrong).
std::vector<Isa> IsasUnderTest() {
  std::vector<Isa> isas = {Isa::kScalar};
  if (la::simd::Compiled()) {
    isas.push_back(Isa::kSse2);
    if (la::simd::BestSupportedIsa() == Isa::kAvx2) {
      isas.push_back(Isa::kAvx2);
    }
  }
  return isas;
}

la::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  util::Rng rng(seed);
  return la::Matrix::RandomNormal(rows, cols, 1.0, rng);
}

// A matrix with sign structure (positives, negatives, exact zeros) so the
// piecewise activations exercise every branch.
la::Matrix SignedMatrix(size_t rows, size_t cols, uint64_t seed) {
  la::Matrix m = RandomMatrix(rows, cols, seed);
  for (size_t i = 0; i < m.data().size(); ++i) {
    if (i % 7 == 0) m.data()[i] = 0.0;
    if (i % 11 == 0) m.data()[i] = -0.0;
  }
  return m;
}

void ExpectBitwiseEqual(const la::Matrix& expect, const la::Matrix& got,
                        const char* what, Isa isa) {
  ASSERT_EQ(expect.rows(), got.rows()) << what;
  ASSERT_EQ(expect.cols(), got.cols()) << what;
  for (size_t i = 0; i < expect.data().size(); ++i) {
    ASSERT_EQ(expect.data()[i], got.data()[i])
        << what << ": element " << i << " differs on "
        << la::simd::IsaName(isa);
  }
}

// Runs `compute` under the scalar ISA, then under every vector ISA, at 1
// and 4 threads, and demands bitwise identity with the scalar result.
template <typename Fn>
void ExpectIsaInvariant(Fn compute, const char* what) {
  for (int threads : kThreadCounts) {
    util::ScopedParallelism p(threads);
    la::Matrix reference;
    {
      la::simd::ScopedIsaOverride pin(Isa::kScalar);
      reference = compute();
    }
    for (Isa isa : IsasUnderTest()) {
      la::simd::ScopedIsaOverride pin(isa);
      const la::Matrix got = compute();
      ExpectBitwiseEqual(reference, got, what, isa);
    }
  }
}

// --- raw primitives, every tail length -------------------------------------

// Exercises one primitive at n = 1..2*lane+1 so every tail remainder
// (0..3 against the widest 4-lane path) is covered, plus a long run.
template <typename Fn>
void CheckPrimitiveAllTails(Fn run_and_flatten, const char* what) {
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 257u}) {
    std::vector<double> reference;
    {
      la::simd::ScopedIsaOverride pin(Isa::kScalar);
      reference = run_and_flatten(n);
    }
    for (Isa isa : IsasUnderTest()) {
      la::simd::ScopedIsaOverride pin(isa);
      const std::vector<double> got = run_and_flatten(n);
      ASSERT_EQ(reference.size(), got.size()) << what;
      for (size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(reference[i], got[i])
            << what << ": n=" << n << " element " << i << " differs on "
            << la::simd::IsaName(isa);
      }
    }
  }
}

std::vector<double> RandomVec(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Normal(0.0, 1.0);
  return v;
}

TEST(SimdEquivalenceTest, PrimitivesAllTails) {
  CheckPrimitiveAllTails(
      [](size_t n) {
        std::vector<double> out = RandomVec(n, 1);
        const std::vector<double> x = RandomVec(n, 2);
        la::simd::Axpy(out.data(), x.data(), 1.7, n);
        return out;
      },
      "Axpy");
  CheckPrimitiveAllTails(
      [](size_t n) {
        std::vector<double> out = RandomVec(n, 3);
        const std::vector<double> x0 = RandomVec(n, 4);
        const std::vector<double> x1 = RandomVec(n, 5);
        const std::vector<double> x2 = RandomVec(n, 6);
        const std::vector<double> x3 = RandomVec(n, 7);
        la::simd::Axpy4(out.data(), x0.data(), x1.data(), x2.data(),
                        x3.data(), 0.3, -1.1, 2.7, -0.2, n);
        return out;
      },
      "Axpy4");
  CheckPrimitiveAllTails(
      [](size_t n) {
        const std::vector<double> a = RandomVec(n, 8);
        const std::vector<double> b = RandomVec(n, 9);
        return std::vector<double>{la::simd::Dot4(a.data(), b.data(), n)};
      },
      "Dot4");
  CheckPrimitiveAllTails(
      [](size_t n) {
        const std::vector<double> a = RandomVec(n, 10);
        const std::vector<double> b = RandomVec(n, 11);
        std::vector<double> out(n);
        la::simd::Add(out.data(), a.data(), b.data(), n);
        la::simd::Sub(out.data(), out.data(), a.data(), n);
        la::simd::Mul(out.data(), out.data(), b.data(), n);
        la::simd::Scale(out.data(), out.data(), -0.37, n);
        la::simd::AddAssign(out.data(), a.data(), n);
        la::simd::SubAssign(out.data(), b.data(), n);
        la::simd::MulAssign(out.data(), a.data(), n);
        la::simd::ScaleAssign(out.data(), 1.13, n);
        return out;
      },
      "elementwise family");
  CheckPrimitiveAllTails(
      [](size_t n) {
        std::vector<double> in = RandomVec(n, 12);
        if (!in.empty()) in[0] = -0.0;  // signed-zero edge
        const std::vector<double> grad = RandomVec(n, 13);
        std::vector<double> out(4 * n);
        la::simd::ReluForward(out.data(), in.data(), n);
        la::simd::ReluBackward(out.data() + n, grad.data(), in.data(), n);
        la::simd::LeakyReluForward(out.data() + 2 * n, in.data(), 0.2, n);
        la::simd::LeakyReluBackward(out.data() + 3 * n, grad.data(),
                                    in.data(), 0.2, n);
        return out;
      },
      "relu family");
  CheckPrimitiveAllTails(
      [](size_t n) {
        const std::vector<double> grad = RandomVec(n, 14);
        std::vector<double> s = RandomVec(n, 15);
        for (double& v : s) v = 1.0 / (1.0 + std::exp(-v));
        std::vector<double> out(2 * n);
        la::simd::SigmoidBackward(out.data(), grad.data(), s.data(), n);
        la::simd::TanhBackward(out.data() + n, grad.data(), s.data(), n);
        return out;
      },
      "sigmoid/tanh backward");
  CheckPrimitiveAllTails(
      [](size_t n) {
        std::vector<double> p = RandomVec(n, 16);
        std::vector<double> m = RandomVec(n, 17);
        std::vector<double> v = RandomVec(n, 18);
        for (double& x : v) x = x * x;  // second moments are non-negative
        const std::vector<double> g = RandomVec(n, 19);
        la::simd::AdamUpdate(p.data(), m.data(), v.data(), g.data(), 1e-3,
                             0.9, 0.999, 0.1, 0.01, 1e-8, n);
        std::vector<double> out = p;
        out.insert(out.end(), m.begin(), m.end());
        out.insert(out.end(), v.begin(), v.end());
        return out;
      },
      "AdamUpdate");
}

// --- dense kernels ---------------------------------------------------------

TEST(SimdEquivalenceTest, MatMulFamily) {
  // 33/77/91 are not lane multiples, so every inner sweep has a tail.
  const la::Matrix a = RandomMatrix(45, 77, 21);
  const la::Matrix b = RandomMatrix(77, 91, 22);
  const la::Matrix c = RandomMatrix(45, 33, 23);
  const la::Matrix d = RandomMatrix(53, 77, 24);
  ExpectIsaInvariant([&] { return a.MatMul(b); }, "MatMul");
  ExpectIsaInvariant([&] { return a.TransposedMatMul(c); },
                     "TransposedMatMul");
  ExpectIsaInvariant([&] { return a.MatMulTransposed(d); },
                     "MatMulTransposed");
}

TEST(SimdEquivalenceTest, MatMulIntoWarmBuffers) {
  const la::Matrix a = RandomMatrix(31, 53, 25);
  const la::Matrix b = RandomMatrix(53, 27, 26);
  ExpectIsaInvariant(
      [&] {
        // Dirty warm buffer of a different prior shape, like a workspace
        // checkout mid-training.
        la::Matrix out(b.cols() + 3, a.rows() + 2);
        out.Fill(kPoison);
        a.MatMulInto(b, &out);
        return out;
      },
      "MatMulInto(warm)");
  const la::Matrix c = RandomMatrix(31, 27, 46);  // A^T C needs rows == 31
  ExpectIsaInvariant(
      [&] {
        la::Matrix out(a.cols(), c.cols());
        out.Fill(0.25);
        a.TransposedMatMulInto(c, &out, /*accumulate=*/true);
        return out;
      },
      "TransposedMatMulInto(accumulate)");
}

TEST(SimdEquivalenceTest, ElementwiseFamily) {
  const la::Matrix a = RandomMatrix(19, 37, 27);
  const la::Matrix b = RandomMatrix(19, 37, 28);
  const la::Matrix row = RandomMatrix(1, 37, 29);
  ExpectIsaInvariant(
      [&] {
        la::Matrix m = a;
        m += b;
        m -= a;
        m *= -1.7;
        m.ElementwiseMul(b);
        m.AddRowBroadcast(row);
        return m;
      },
      "in-place elementwise");
  ExpectIsaInvariant(
      [&] {
        la::Matrix sum;
        la::Matrix diff;
        la::Matrix scaled;
        a.AddInto(b, &sum);
        a.SubInto(b, &diff);
        a.ScaleInto(0.77, &scaled);
        sum.ElementwiseMul(diff);
        sum += scaled;
        return sum;
      },
      "*Into elementwise");
  ExpectIsaInvariant(
      [&] {
        la::Matrix acc(1, a.cols());
        acc.Fill(0.5);
        a.ColSumInto(&acc, /*accumulate=*/true);
        la::Matrix plain = a.ColSum();
        acc += plain;
        return acc;
      },
      "ColSum / ColSumInto(accumulate)");
}

// --- sparse kernels --------------------------------------------------------

std::vector<std::pair<size_t, size_t>> RingWithChords(size_t n) {
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i < n; ++i) {
    edges.emplace_back(i, (i + 1) % n);
    if (i % 3 == 0) edges.emplace_back(i, (i + n / 2) % n);
  }
  return edges;
}

TEST(SimdEquivalenceTest, SparseMultiply) {
  const la::SparseMatrix s =
      la::SparseMatrix::NormalizedAdjacency(300, RingWithChords(300));
  const la::Matrix x = RandomMatrix(300, 33, 31);  // non-lane-multiple d
  ExpectIsaInvariant([&] { return s.Multiply(x); }, "SpMM");
  ExpectIsaInvariant([&] { return s.TransposedMultiply(x); }, "SpMM^T");
  ExpectIsaInvariant(
      [&] {
        la::Matrix out(7, 5);
        out.Fill(kPoison);
        s.MultiplyInto(x, &out);
        return out;
      },
      "MultiplyInto(warm)");
}

// --- nn sweeps -------------------------------------------------------------

TEST(SimdEquivalenceTest, Activations) {
  const la::Matrix x = SignedMatrix(23, 31, 33);
  const la::Matrix grad = RandomMatrix(23, 31, 34);
  ExpectIsaInvariant(
      [&] {
        nn::Relu relu;
        la::Matrix out = relu.Forward(x, /*training=*/true);
        out += relu.Backward(grad);
        return out;
      },
      "Relu");
  ExpectIsaInvariant(
      [&] {
        nn::LeakyRelu leaky(0.2);
        la::Matrix out = leaky.Forward(x, /*training=*/true);
        out += leaky.Backward(grad);
        return out;
      },
      "LeakyRelu");
  ExpectIsaInvariant(
      [&] {
        nn::Sigmoid sigmoid;
        la::Matrix out = sigmoid.Forward(x, /*training=*/true);
        out += sigmoid.Backward(grad);
        return out;
      },
      "Sigmoid");
  ExpectIsaInvariant(
      [&] {
        nn::Tanh tanh_act;
        la::Matrix out = tanh_act.Forward(x, /*training=*/true);
        out += tanh_act.Backward(grad);
        return out;
      },
      "Tanh");
}

TEST(SimdEquivalenceTest, AdamSteps) {
  ExpectIsaInvariant(
      [&] {
        la::Matrix p = RandomMatrix(13, 21, 35);
        nn::Adam adam(nn::AdamOptions{});
        util::Rng rng(36);
        for (int step = 0; step < 5; ++step) {
          la::Matrix g = la::Matrix::RandomNormal(13, 21, 0.1, rng);
          adam.Step({&p}, {&g});
        }
        return p;
      },
      "Adam");
}

// --- propagation -----------------------------------------------------------

TEST(SimdEquivalenceTest, PprRows) {
  const la::SparseMatrix s =
      la::SparseMatrix::NormalizedAdjacency(200, RingWithChords(200));
  ExpectIsaInvariant(
      [&] {
        prop::PprEngine engine(&s);
        std::vector<size_t> seeds = {0, 7, 50, 199};
        engine.ComputeRows(seeds);
        la::Matrix flat(seeds.size(), 200);
        for (size_t i = 0; i < seeds.size(); ++i) {
          const std::vector<double>& row = engine.Row(seeds[i]);
          for (size_t j = 0; j < row.size(); ++j) flat.At(i, j) = row[j];
        }
        return flat;
      },
      "PPR rows");
}

// --- dispatch plumbing -----------------------------------------------------

TEST(SimdEquivalenceTest, ScopedOverrideRestores) {
  const Isa before = la::simd::ActiveIsa();
  {
    la::simd::ScopedIsaOverride pin(Isa::kScalar);
    EXPECT_EQ(la::simd::ActiveIsa(), Isa::kScalar);
  }
  EXPECT_EQ(la::simd::ActiveIsa(), before);
}

TEST(SimdEquivalenceTest, MatrixStorageIsArenaAligned) {
  la::Matrix m(7, 9);
  EXPECT_TRUE(la::simd::IsArenaAligned(m.RowPtr(0)));
  // Alignment survives growth reallocation.
  m.EnsureShape(333, 41);
  EXPECT_TRUE(la::simd::IsArenaAligned(m.RowPtr(0)));
}

}  // namespace
}  // namespace gale
