// Delta log: batch round-trips, append/reopen, and coded rejection of
// every corruption class (truncation, bit flips, bad magic, version
// skew, malformed records).

#include "store/delta_log.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "core/sgan.h"
#include "graph/attributed_graph.h"
#include "util/status.h"
#include "util/string_util.h"

namespace gale::store {
namespace {

using graph::AttributeValue;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

// One batch exercising every delta kind and every value kind.
DeltaBatch MakeKitchenSinkBatch() {
  return {
      Delta::UpsertNode(12, 0,
                        {AttributeValue::Text("Avengers"),
                         AttributeValue::Number(2012.0),
                         AttributeValue::Null()}),
      Delta::UpsertEdge(3, 7, 1),
      Delta::RemoveEdge(4, 9, 0),
      Delta::SetAttribute(5, 2, AttributeValue::Text("remaster")),
      Delta::SetAttribute(6, 0, AttributeValue::Number(-3.5)),
      Delta::SetLabel(8, core::kLabelError),
      Delta::SetLabel(9, core::kUnlabeled),
  };
}

// Writes `batches` to a fresh log at `path`.
void WriteLog(const std::string& path,
              const std::vector<DeltaBatch>& batches) {
  auto writer = DeltaLogWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (const DeltaBatch& batch : batches) {
    ASSERT_TRUE(writer.value().Append(batch).ok());
  }
}

TEST(DeltaLogTest, RoundTripPreservesEveryDeltaKind) {
  const std::string path = TempPath("log_roundtrip.bin");
  const std::vector<DeltaBatch> batches{
      MakeKitchenSinkBatch(),
      {Delta::SetLabel(0, core::kLabelCorrect)},
  };
  WriteLog(path, batches);

  auto back = ReadDeltaLog(path);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back.value().size(), batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    ASSERT_EQ(back.value()[b].size(), batches[b].size()) << "batch " << b;
    for (size_t i = 0; i < batches[b].size(); ++i) {
      EXPECT_EQ(back.value()[b][i], batches[b][i])
          << "batch " << b << " delta " << i;
    }
  }
}

TEST(DeltaLogTest, AppendAfterReopenExtendsTheStream) {
  const std::string path = TempPath("log_reopen.bin");
  WriteLog(path, {MakeKitchenSinkBatch()});

  auto reopened = DeltaLogWriter::OpenForAppend(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const DeltaBatch extra{Delta::UpsertEdge(1, 2, 0)};
  ASSERT_TRUE(reopened.value().Append(extra).ok());
  EXPECT_EQ(reopened.value().batches_written(), 1u);

  auto back = ReadDeltaLog(path);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_EQ(back.value()[1], extra);
}

TEST(DeltaLogTest, AppendRejectsEmptyBatch) {
  const std::string path = TempPath("log_empty_batch.bin");
  auto writer = DeltaLogWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  const util::Status empty = writer.value().Append({});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.code(), util::StatusCode::kInvalidArgument);
}

TEST(DeltaLogTest, EmptyLogReadsAsZeroBatches) {
  const std::string path = TempPath("log_header_only.bin");
  WriteLog(path, {});
  auto back = ReadDeltaLog(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back.value().empty());
}

TEST(DeltaLogTest, ReadRejectsMissingFile) {
  auto missing = ReadDeltaLog(TempPath("log_does_not_exist.bin"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);

  auto reopen = DeltaLogWriter::OpenForAppend(TempPath("log_nope.bin"));
  ASSERT_FALSE(reopen.ok());
  EXPECT_EQ(reopen.status().code(), util::StatusCode::kNotFound);
}

TEST(DeltaLogTest, ReadRejectsTruncatedFile) {
  const std::string path = TempPath("log_trunc.bin");
  WriteLog(path, {MakeKitchenSinkBatch()});
  const std::string original = ReadFileBytes(path);

  // Mid-payload, mid-record-header, and header-only-plus-stub cuts.
  for (size_t keep : {original.size() - 3, size_t{16 + 7}, size_t{5}}) {
    std::string bytes = original;
    bytes.resize(keep);
    WriteFileBytes(path, bytes);
    auto truncated = ReadDeltaLog(path);
    ASSERT_FALSE(truncated.ok()) << "cut at " << keep;
    EXPECT_EQ(truncated.status().code(), util::StatusCode::kDataLoss)
        << "cut at " << keep;
  }
}

TEST(DeltaLogTest, ReadRejectsBitFlips) {
  const std::string path = TempPath("log_flip.bin");
  WriteLog(path, {MakeKitchenSinkBatch()});
  const std::string original = ReadFileBytes(path);

  // Payload flips trip the checksum; a magic flip is caught up front.
  for (size_t pos : {size_t{40}, original.size() / 2, original.size() - 1}) {
    std::string bytes = original;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x04);
    WriteFileBytes(path, bytes);
    auto corrupt = ReadDeltaLog(path);
    ASSERT_FALSE(corrupt.ok()) << "flip at " << pos;
    EXPECT_EQ(corrupt.status().code(), util::StatusCode::kDataLoss)
        << "flip at " << pos;
  }

  std::string bytes = original;
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  auto bad_magic = ReadDeltaLog(path);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.status().code(), util::StatusCode::kDataLoss);
}

TEST(DeltaLogTest, ReadRejectsFutureFormatVersion) {
  const std::string path = TempPath("log_version.bin");
  WriteLog(path, {MakeKitchenSinkBatch()});
  std::string bytes = ReadFileBytes(path);
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof version);
  ASSERT_EQ(version, kDeltaLogFormatVersion);
  version = kDeltaLogFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &version, sizeof version);
  WriteFileBytes(path, bytes);

  auto future = ReadDeltaLog(path);
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.status().code(), util::StatusCode::kFailedPrecondition);

  // OpenForAppend must refuse the same skew instead of mixing formats.
  auto reopen = DeltaLogWriter::OpenForAppend(path);
  ASSERT_FALSE(reopen.ok());
  EXPECT_EQ(reopen.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(DeltaLogTest, ReadRejectsUnknownDeltaKind) {
  const std::string path = TempPath("log_bad_kind.bin");
  // A single SetLabel delta: its u32 kind tag sits right after the
  // record header's u64 delta count.
  WriteLog(path, {{Delta::SetLabel(1, core::kLabelError)}});
  std::string bytes = ReadFileBytes(path);
  const size_t kind_offset = 16 + 16 + 8;  // file hdr + record hdr + count
  uint32_t kind = 0;
  std::memcpy(&kind, bytes.data() + kind_offset, sizeof kind);
  ASSERT_EQ(kind, static_cast<uint32_t>(DeltaKind::kSetLabel));
  kind = 99;
  std::memcpy(bytes.data() + kind_offset, &kind, sizeof kind);
  // Re-stamp the record checksum so only the kind is wrong, proving the
  // decoder (not the checksum) rejects it.
  const size_t payload_offset = 16 + 16;
  uint64_t checksum = 0;
  {
    std::string_view payload(bytes.data() + payload_offset,
                             bytes.size() - payload_offset);
    checksum = util::Fnv1aHash(payload);
  }
  std::memcpy(bytes.data() + 16 + 8, &checksum, sizeof checksum);
  WriteFileBytes(path, bytes);

  auto bad_kind = ReadDeltaLog(path);
  ASSERT_FALSE(bad_kind.ok());
  EXPECT_EQ(bad_kind.status().code(), util::StatusCode::kDataLoss);
}

TEST(DeltaLogTest, ReadRejectsTrailingGarbage) {
  const std::string path = TempPath("log_trailing.bin");
  WriteLog(path, {{Delta::SetLabel(1, core::kLabelError)}});
  std::string bytes = ReadFileBytes(path);
  bytes += "garbage";
  WriteFileBytes(path, bytes);
  auto trailing = ReadDeltaLog(path);
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().code(), util::StatusCode::kDataLoss);
}

}  // namespace
}  // namespace gale::store
