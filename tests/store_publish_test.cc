// VersionedGraphStore: batch validation + atomicity, epoch stamping,
// dirty-row tracking, and the exactness contract of incremental publish —
// an incrementally published snapshot is bitwise identical to a
// from-scratch rebuild of the same end-state graph, at 1 and 4 threads.

#include "store/store.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/sgan.h"
#include "graph/attributed_graph.h"
#include "graph/feature_encoder.h"
#include "la/sparse_matrix.h"
#include "obs/report.h"
#include "serve/snapshot.h"
#include "store/delta_log.h"
#include "util/parallel.h"
#include "util/status.h"

namespace gale::store {
namespace {

using graph::AttributeValue;
using graph::ValueKind;

constexpr size_t kNodes = 30;

// One "film" type with a text and a numeric attribute; ring + chord
// topology; a couple of error/correct labels.
graph::AttributedGraph MakeBaseGraph() {
  graph::AttributedGraph g;
  const size_t film = g.AddNodeType(
      "film", {{"name", ValueKind::kText}, {"year", ValueKind::kNumeric}});
  g.AddEdgeType("subsequent");
  g.AddEdgeType("remake");
  for (size_t v = 0; v < kNodes; ++v) {
    g.AddNode(film, {AttributeValue::Text("film-" + std::to_string(v)),
                     AttributeValue::Number(1990.0 + static_cast<double>(v))});
  }
  for (size_t v = 0; v < kNodes; ++v) {
    g.AddEdge(v, (v + 1) % kNodes, 0);
    if (v % 3 == 0) g.AddEdge(v, (v + 7) % kNodes, 1);
  }
  g.Finalize();
  return g;
}

std::vector<int> MakeBaseLabels() {
  std::vector<int> labels(kNodes, core::kUnlabeled);
  labels[2] = core::kLabelError;
  labels[11] = core::kLabelError;
  labels[5] = core::kLabelCorrect;
  return labels;
}

core::DiscriminatorSnapshot MakeDiscriminator(size_t feature_dim) {
  core::SganConfig config;
  config.hidden_dim = 8;
  config.embedding_dim = 6;
  config.seed = 77;
  core::Sgan sgan(feature_dim, config);
  return sgan.ExportDiscriminator();
}

std::unique_ptr<VersionedGraphStore> MakeStore(StoreOptions options = {}) {
  auto store =
      VersionedGraphStore::Create(MakeBaseGraph(), MakeBaseLabels(), options);
  EXPECT_TRUE(store.ok()) << store.status();
  return std::move(store).value();
}

core::DiscriminatorSnapshot StoreDiscriminator(
    const VersionedGraphStore& store) {
  const graph::FeatureEncoder encoder;
  return MakeDiscriminator(encoder.RawDims(store.graph()));
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Serialized bytes of a published snapshot — the memcmp currency of every
// exactness test here.
std::string SnapshotBytes(const PublishedSnapshot& published,
                          const std::string& name) {
  const std::string path = TempPath(name);
  EXPECT_TRUE(published.snapshot.Save(path).ok());
  return ReadFileBytes(path);
}

// A three-batch mutation stream touching attributes, labels, and
// topology (the publish-after-each-batch incremental workload).
std::vector<DeltaBatch> MakeMutationStream() {
  return {
      // Batch 1: attribute-only.
      {Delta::SetAttribute(4, 0, AttributeValue::Text("film-4-remaster")),
       Delta::SetAttribute(9, 1, AttributeValue::Number(2024.0)),
       Delta::UpsertNode(7, 0,
                         {AttributeValue::Text("film-7-recut"),
                          AttributeValue::Number(2001.0)})},
      // Batch 2: label-only (one new error, one retirement).
      {Delta::SetLabel(20, core::kLabelError),
       Delta::SetLabel(11, core::kLabelCorrect)},
      // Batch 3: topology (new node + edges rewired through it).
      {Delta::UpsertNode(kNodes, 0,
                         {AttributeValue::Text("film-new"),
                          AttributeValue::Number(2026.0)}),
       Delta::UpsertEdge(kNodes, 3, 0),
       Delta::UpsertEdge(kNodes, 15, 1),
       Delta::RemoveEdge(3, 4, 0),
       Delta::SetLabel(kNodes, core::kLabelError)},
  };
}

TEST(VersionedGraphStoreTest, CreateValidatesInputs) {
  graph::AttributedGraph unfinalized;
  unfinalized.AddNodeType("t", {});
  auto open = VersionedGraphStore::Create(std::move(unfinalized), {});
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.status().code(), util::StatusCode::kFailedPrecondition);

  auto short_labels = VersionedGraphStore::Create(
      MakeBaseGraph(), std::vector<int>(kNodes - 1, core::kUnlabeled));
  ASSERT_FALSE(short_labels.ok());
  EXPECT_EQ(short_labels.status().code(), util::StatusCode::kInvalidArgument);

  std::vector<int> bad_labels = MakeBaseLabels();
  bad_labels[0] = 42;
  auto alien_label =
      VersionedGraphStore::Create(MakeBaseGraph(), std::move(bad_labels));
  ASSERT_FALSE(alien_label.ok());
  EXPECT_EQ(alien_label.status().code(), util::StatusCode::kInvalidArgument);

  StoreOptions no_cache;
  no_cache.ppr.cache_rows = false;
  auto uncached =
      VersionedGraphStore::Create(MakeBaseGraph(), MakeBaseLabels(), no_cache);
  ASSERT_FALSE(uncached.ok());
  EXPECT_EQ(uncached.status().code(), util::StatusCode::kInvalidArgument);

  StoreOptions zero_batch;
  zero_batch.max_batch_deltas = 0;
  auto degenerate = VersionedGraphStore::Create(MakeBaseGraph(),
                                                MakeBaseLabels(), zero_batch);
  ASSERT_FALSE(degenerate.ok());
  EXPECT_EQ(degenerate.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(VersionedGraphStoreTest, ApplyBatchRejectsInvalidDeltasAtomically) {
  auto store = MakeStore();

  struct Case {
    DeltaBatch batch;
    util::StatusCode code;
  };
  const std::vector<Case> cases{
      // Unknown node targets.
      {{Delta::SetLabel(kNodes + 5, core::kLabelError)},
       util::StatusCode::kNotFound},
      {{Delta::SetAttribute(kNodes, 0, AttributeValue::Text("x"))},
       util::StatusCode::kNotFound},
      // Node id past the append position.
      {{Delta::UpsertNode(kNodes + 1, 0,
                          {AttributeValue::Text("x"),
                           AttributeValue::Number(0.0)})},
       util::StatusCode::kNotFound},
      // Type-mismatched attribute value (numeric slot, text value).
      {{Delta::SetAttribute(3, 1, AttributeValue::Text("not-a-year"))},
       util::StatusCode::kInvalidArgument},
      // Wrong value count for the declared schema.
      {{Delta::UpsertNode(kNodes, 0, {AttributeValue::Text("x")})},
       util::StatusCode::kInvalidArgument},
      // Unknown node type / attribute / edge type.
      {{Delta::UpsertNode(kNodes, 9,
                          {AttributeValue::Text("x"),
                           AttributeValue::Number(0.0)})},
       util::StatusCode::kInvalidArgument},
      {{Delta::SetAttribute(3, 7, AttributeValue::Text("x"))},
       util::StatusCode::kNotFound},
      {{Delta::UpsertEdge(1, 2, 9)}, util::StatusCode::kInvalidArgument},
      // Removing an edge that is not there.
      {{Delta::RemoveEdge(0, 5, 0)}, util::StatusCode::kNotFound},
      // Label outside the core conventions.
      {{Delta::SetLabel(1, 3)}, util::StatusCode::kInvalidArgument},
      // A valid delta does NOT shield a later invalid one (atomicity).
      {{Delta::SetAttribute(4, 0, AttributeValue::Text("would-apply")),
        Delta::SetLabel(kNodes + 5, core::kLabelError)},
       util::StatusCode::kNotFound},
  };

  for (size_t c = 0; c < cases.size(); ++c) {
    const util::Status rejected = store->ApplyBatch(cases[c].batch);
    ASSERT_FALSE(rejected.ok()) << "case " << c;
    EXPECT_EQ(rejected.code(), cases[c].code) << "case " << c;
  }

  // Nothing moved: epoch, labels, values, dirt all pristine.
  EXPECT_EQ(store->epoch(), 0u);
  EXPECT_EQ(store->num_dirty_rows(), 0u);
  EXPECT_EQ(store->labels(), MakeBaseLabels());
  EXPECT_EQ(store->graph().value(4, 0), AttributeValue::Text("film-4"));
  EXPECT_EQ(store->graph().num_nodes(), kNodes);

  const obs::Report report = store->ObsReport();
  EXPECT_EQ(report.CounterOr("gale.store.batches_rejected"), cases.size());
  EXPECT_EQ(report.CounterOr("gale.store.batches_applied"), 0u);
}

TEST(VersionedGraphStoreTest, ApplyBatchRejectsOversizedBatch) {
  StoreOptions options;
  options.max_batch_deltas = 2;
  auto store = MakeStore(options);
  const DeltaBatch big{Delta::SetLabel(0, core::kLabelError),
                       Delta::SetLabel(1, core::kLabelError),
                       Delta::SetLabel(2, core::kLabelError)};
  const util::Status rejected = store->ApplyBatch(big);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(store->epoch(), 0u);
}

TEST(VersionedGraphStoreTest, EpochsAdvancePerAppliedBatch) {
  auto store = MakeStore();
  EXPECT_EQ(store->epoch(), 0u);
  EXPECT_EQ(store->published_epoch(), 0u);

  const std::vector<DeltaBatch> stream = MakeMutationStream();
  for (size_t b = 0; b < stream.size(); ++b) {
    ASSERT_TRUE(store->ApplyBatch(stream[b]).ok());
    EXPECT_EQ(store->epoch(), b + 1);
  }

  auto published = store->PublishSnapshot(StoreDiscriminator(*store));
  ASSERT_TRUE(published.ok()) << published.status();
  EXPECT_EQ(published.value().epoch, stream.size());
  EXPECT_EQ(store->published_epoch(), stream.size());
}

TEST(VersionedGraphStoreTest, DirtyTrackingCoversTargetsAndNeighbors) {
  auto store = MakeStore();
  // Flush the construction-time cold state (the first publish always
  // rebuilds) so the flags below reflect only the applied batches.
  ASSERT_TRUE(store->PublishSnapshot(StoreDiscriminator(*store)).ok());

  // Attribute-only: exactly the target row is dirty, topology is clean.
  ASSERT_TRUE(store
                  ->ApplyBatch({Delta::SetAttribute(
                      10, 0, AttributeValue::Text("renamed"))})
                  .ok());
  EXPECT_EQ(store->num_dirty_rows(), 1u);
  EXPECT_FALSE(store->topology_dirty());

  // Edge change: endpoints plus their current neighborhoods are dirty.
  // Node 0's CSR ring/chord neighbors: 1, 29, 7; node 5's: 4, 6.
  ASSERT_TRUE(store->ApplyBatch({Delta::UpsertEdge(0, 5, 1)}).ok());
  EXPECT_TRUE(store->topology_dirty());
  // {10} ∪ {0, 1, 29, 7} ∪ {5, 4, 6} = 8 rows.
  EXPECT_EQ(store->num_dirty_rows(), 8u);

  // A validated no-op upsert (edge already present) dirties nothing.
  const size_t before = store->num_dirty_rows();
  ASSERT_TRUE(store->ApplyBatch({Delta::UpsertEdge(5, 0, 1),
                                 Delta::SetLabel(10, core::kUnlabeled)})
                  .ok());
  EXPECT_EQ(store->num_dirty_rows(), before);  // 10 was already dirty

  // Publish resets the dirt.
  auto published = store->PublishSnapshot(StoreDiscriminator(*store));
  ASSERT_TRUE(published.ok()) << published.status();
  EXPECT_EQ(published.value().rows_invalidated, 8u);
  EXPECT_TRUE(published.value().full_rebuild);
  EXPECT_EQ(store->num_dirty_rows(), 0u);
  EXPECT_FALSE(store->topology_dirty());
}

// The tentpole exactness contract: publishing after every batch (warm,
// incremental) must produce byte-identical snapshots to a second store
// that replays the same log and publishes once, cold, at the end.
TEST(VersionedGraphStoreTest, IncrementalPublishMatchesScratchRebuild) {
  const std::vector<DeltaBatch> stream = MakeMutationStream();

  auto incremental = MakeStore();
  const core::DiscriminatorSnapshot disc = StoreDiscriminator(*incremental);
  std::string last_bytes;
  for (size_t b = 0; b < stream.size(); ++b) {
    ASSERT_TRUE(incremental->ApplyBatch(stream[b]).ok());
    auto published = incremental->PublishSnapshot(disc);
    ASSERT_TRUE(published.ok()) << published.status();
    last_bytes =
        SnapshotBytes(published.value(), "inc_" + std::to_string(b) + ".bin");

    // From-scratch reference: fresh store, replay prefix, single cold
    // publish.
    auto scratch = MakeStore();
    ASSERT_TRUE(
        scratch
            ->Replay(std::vector<DeltaBatch>(stream.begin(),
                                             stream.begin() + b + 1))
            .ok());
    auto cold = scratch->PublishSnapshot(disc);
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_TRUE(cold.value().full_rebuild);
    const std::string cold_bytes =
        SnapshotBytes(cold.value(), "cold_" + std::to_string(b) + ".bin");
    ASSERT_EQ(last_bytes.size(), cold_bytes.size()) << "epoch " << b + 1;
    EXPECT_EQ(
        std::memcmp(last_bytes.data(), cold_bytes.data(), last_bytes.size()),
        0)
        << "incremental publish diverged from scratch rebuild at epoch "
        << b + 1;
  }
}

// Label-only epochs must reuse every still-error seed's warm PPR row and
// refresh only the newly labeled ones; attr-only epochs keep the walk.
TEST(VersionedGraphStoreTest, WarmPublishReusesUnchangedPprRows) {
  auto store = MakeStore();
  const core::DiscriminatorSnapshot disc = StoreDiscriminator(*store);

  auto first = store->PublishSnapshot(disc);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first.value().full_rebuild);  // first publish is always cold
  EXPECT_EQ(first.value().ppr_rows_refreshed, 2u);  // seeds {2, 11}
  EXPECT_EQ(first.value().ppr_rows_reused, 0u);

  // One new error, one retirement: only the new seed power-iterates.
  ASSERT_TRUE(store
                  ->ApplyBatch({Delta::SetLabel(20, core::kLabelError),
                                Delta::SetLabel(11, core::kLabelCorrect)})
                  .ok());
  auto second = store->PublishSnapshot(disc);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second.value().full_rebuild);
  EXPECT_EQ(second.value().ppr_rows_refreshed, 1u);  // seed 20
  EXPECT_EQ(second.value().ppr_rows_reused, 1u);     // seed 2 stayed warm

  // Attribute-only epoch: zero PPR work, still no rebuild.
  ASSERT_TRUE(store
                  ->ApplyBatch({Delta::SetAttribute(
                      6, 0, AttributeValue::Text("patched"))})
                  .ok());
  auto third = store->PublishSnapshot(disc);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_FALSE(third.value().full_rebuild);
  EXPECT_EQ(third.value().ppr_rows_refreshed, 0u);
  EXPECT_EQ(third.value().ppr_rows_reused, 2u);

  const obs::Report report = store->ObsReport();
  EXPECT_EQ(report.CounterOr("gale.store.full_rebuilds"), 1u);
  EXPECT_EQ(report.CounterOr("gale.store.epochs_published"), 3u);
  EXPECT_EQ(report.CounterOr("gale.store.ppr_rows_reused"), 3u);
}

// The published snapshot must be indistinguishable from one assembled by
// serve::ScoringSnapshot::FromParts over the same end state — the store
// adds versioning, not a different math path.
TEST(VersionedGraphStoreTest, PublishMatchesFromPartsAssembly) {
  auto store = MakeStore();
  const core::DiscriminatorSnapshot disc = StoreDiscriminator(*store);
  ASSERT_TRUE(store
                  ->ApplyBatch({Delta::SetLabel(20, core::kLabelError),
                                Delta::SetAttribute(
                                    4, 1, AttributeValue::Number(1888.0))})
                  .ok());
  auto published = store->PublishSnapshot(disc);
  ASSERT_TRUE(published.ok()) << published.status();

  auto features = graph::FeatureEncoder().Encode(store->graph());
  ASSERT_TRUE(features.ok()) << features.status();
  auto reference = serve::ScoringSnapshot::FromParts(
      disc, std::move(features).value(),
      la::SparseMatrix::NormalizedAdjacency(store->graph().num_nodes(),
                                            store->graph().EdgePairs()),
      store->labels());
  ASSERT_TRUE(reference.ok()) << reference.status();

  const std::string store_bytes =
      SnapshotBytes(published.value(), "vs_parts_store.bin");
  const std::string ref_path = TempPath("vs_parts_ref.bin");
  ASSERT_TRUE(reference.value().Save(ref_path).ok());
  const std::string ref_bytes = ReadFileBytes(ref_path);
  ASSERT_EQ(store_bytes.size(), ref_bytes.size());
  EXPECT_EQ(
      std::memcmp(store_bytes.data(), ref_bytes.data(), store_bytes.size()),
      0);
}

// Replay determinism across thread counts: the same delta log produces
// byte-identical published snapshots at GALE_NUM_THREADS=1 and 4.
TEST(VersionedGraphStoreTest, ReplayIsByteIdenticalAcrossThreadCounts) {
  const std::vector<DeltaBatch> stream = MakeMutationStream();

  auto run = [&stream](int threads, const std::string& name) {
    util::ScopedParallelism parallelism(threads);
    auto store = MakeStore();
    const core::DiscriminatorSnapshot disc = StoreDiscriminator(*store);
    EXPECT_TRUE(store->Replay(stream).ok());
    auto published = store->PublishSnapshot(disc);
    EXPECT_TRUE(published.ok()) << published.status();
    return SnapshotBytes(published.value(), name);
  };

  const std::string serial = run(1, "threads_1.bin");
  const std::string parallel = run(4, "threads_4.bin");
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(std::memcmp(serial.data(), parallel.data(), serial.size()), 0)
      << "published snapshot depends on GALE_NUM_THREADS";
}

TEST(VersionedGraphStoreTest, ReplayReportsFailingBatchIndex) {
  auto store = MakeStore();
  const std::vector<DeltaBatch> stream{
      {Delta::SetLabel(0, core::kLabelError)},
      {Delta::SetLabel(kNodes + 9, core::kLabelError)},  // invalid
      {Delta::SetLabel(1, core::kLabelError)},
  };
  const util::Status failed = store->Replay(stream);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), util::StatusCode::kNotFound);
  EXPECT_NE(failed.message().find("batch 1"), std::string::npos)
      << failed.message();
  EXPECT_EQ(store->epoch(), 1u);  // the good prefix applied
}

// End-to-end through the log: write batches to disk, read them back,
// replay into a store, publish, score — the README quickstart shape.
TEST(VersionedGraphStoreTest, LogReplayPublishScoreQuickstart) {
  const std::string path = TempPath("quickstart.dlog");
  {
    auto writer = DeltaLogWriter::Create(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (const DeltaBatch& batch : MakeMutationStream()) {
      ASSERT_TRUE(writer.value().Append(batch).ok());
    }
  }
  auto batches = ReadDeltaLog(path);
  ASSERT_TRUE(batches.ok()) << batches.status();

  auto store = MakeStore();
  ASSERT_TRUE(store->Replay(batches.value()).ok());
  auto published = store->PublishSnapshot(StoreDiscriminator(*store));
  ASSERT_TRUE(published.ok()) << published.status();
  EXPECT_EQ(published.value().epoch, 3u);

  serve::SnapshotScorer scorer(&published.value().snapshot, 4);
  std::vector<size_t> nodes{0, 20, kNodes};  // kNodes added by batch 3
  std::vector<serve::NodeScore> scores(nodes.size());
  scorer.ScoreInto(nodes, scores.data());
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_GT(scores[i].p_error, 0.0);
    EXPECT_LT(scores[i].p_error, 1.0);
  }
  // The new node was labeled error, so it has self-influence.
  EXPECT_GT(scores[2].error_influence, 0.0);
}

}  // namespace
}  // namespace gale::store
