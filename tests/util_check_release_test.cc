// Contract-layer tests with the checks FORCED OFF: this TU undefines
// GALE_DEBUG_CHECKS before including the header, so every GALE_DCHECK*
// must compile to the dead `while (false)` form — violated conditions do
// not abort and, critically, side-effecting operands are never evaluated.
// That non-evaluation is what makes the release-build zero-cost claim
// checkable from a test rather than an assertion in a comment.

#ifdef GALE_DEBUG_CHECKS
#undef GALE_DEBUG_CHECKS
#endif
#include "util/check.h"

#include <limits>
#include <vector>

#include "gtest/gtest.h"

namespace gale {
namespace {

TEST(DcheckReleaseTest, ViolatedChecksDoNotFire) {
  GALE_DCHECK(false) << "must never abort";
  GALE_DCHECK_EQ(1, 2);
  GALE_DCHECK_INDEX(10, 3);
  GALE_DCHECK_FINITE(std::numeric_limits<double>::quiet_NaN());
  GALE_DCHECK_PROB(42.0);
  const std::vector<double> poisoned = {
      std::numeric_limits<double>::infinity()};
  GALE_DCHECK_ALL_FINITE(poisoned);
  SUCCEED();
}

TEST(DcheckReleaseTest, ConditionIsNotEvaluated) {
  int evaluations = 0;
  auto costly = [&evaluations] {
    ++evaluations;
    return false;
  };
  GALE_DCHECK(costly()) << "stream side effect " << ++evaluations;
  EXPECT_EQ(evaluations, 0);
}

TEST(DcheckReleaseTest, OperandsCountAsUsed) {
  // A variable referenced only from a disabled check must not warn under
  // -Wunused (this file compiles with GALE_WERROR=ON in check_all.sh); it
  // is enough that this compiles.
  const size_t only_checked = 7;
  GALE_DCHECK_LT(only_checked, 100u);
  SUCCEED();
}

}  // namespace
}  // namespace gale
