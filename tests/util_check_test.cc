// Contract-layer tests with the checks FORCED ON: this binary compiles
// with a per-target GALE_DEBUG_CHECKS=1 (tests/CMakeLists.txt), so every
// GALE_DCHECK* here is live regardless of the build-wide option. The
// sibling util_check_release_test verifies the compiled-out form.

#include "util/check.h"

#include <cmath>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "la/matrix.h"

namespace gale {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- the checks must be live in this TU ------------------------------------

TEST(CheckConfig, DebugChecksEnabledInThisBinary) {
#ifndef GALE_DEBUG_CHECKS
  FAIL() << "util_check_test must compile with GALE_DEBUG_CHECKS=1";
#endif
}

// --- passing contracts are silent ------------------------------------------

TEST(DcheckTest, PassingChecksDoNotFire) {
  const std::vector<double> v = {0.0, 1.0, -2.5};
  GALE_DCHECK(true) << "never shown";
  GALE_DCHECK_EQ(2 + 2, 4);
  GALE_DCHECK_NE(1, 2);
  GALE_DCHECK_LT(1, 2);
  GALE_DCHECK_LE(2, 2);
  GALE_DCHECK_GT(3, 2);
  GALE_DCHECK_GE(3, 3);
  GALE_DCHECK_INDEX(2, 3);
  GALE_DCHECK_FINITE(1.5);
  GALE_DCHECK_ALL_FINITE(v);
  GALE_DCHECK_PROB(0.0);
  GALE_DCHECK_PROB(1.0);
  const la::Matrix m(3, 4);
  GALE_DCHECK_SHAPE(m, 3, 4);
  GALE_DCHECK_SAME_SHAPE(m, m);
}

// --- violated contracts abort with the condition in the message -------------

TEST(DcheckDeathTest, DcheckFires) {
  EXPECT_DEATH(GALE_DCHECK(1 == 2) << "broken invariant",
               "Check failed:.*broken invariant");
}

TEST(DcheckDeathTest, ComparisonsDumpValues) {
  const int a = 3;
  const int b = 7;
  EXPECT_DEATH(GALE_DCHECK_EQ(a, b), "Check failed:.*3 vs 7");
  EXPECT_DEATH(GALE_DCHECK_LT(b, a), "Check failed:.*7 vs 3");
  EXPECT_DEATH(GALE_DCHECK_GE(a, b), "Check failed:");
}

TEST(DcheckDeathTest, IndexFires) {
  const size_t n = 4;
  EXPECT_DEATH(GALE_DCHECK_INDEX(4, n), "index 4 out of range \\[0, 4\\)");
  // Negative indices convert to huge size_t values and fail the same way.
  const int neg = -1;
  EXPECT_DEATH(GALE_DCHECK_INDEX(neg, n), "out of range");
}

TEST(DcheckDeathTest, ShapeFires) {
  const la::Matrix m(3, 4);
  EXPECT_DEATH(GALE_DCHECK_SHAPE(m, 4, 3), "got 3x4, want 4x3");
  const la::Matrix other(2, 4);
  EXPECT_DEATH(GALE_DCHECK_SAME_SHAPE(m, other), "3x4 vs 2x4");
}

TEST(DcheckDeathTest, FiniteFires) {
  EXPECT_DEATH(GALE_DCHECK_FINITE(kNan), "Check failed:");
  EXPECT_DEATH(GALE_DCHECK_FINITE(kInf), "Check failed:");
  const std::vector<double> poisoned = {1.0, kNan, 3.0};
  EXPECT_DEATH(GALE_DCHECK_ALL_FINITE(poisoned), "Check failed:");
}

TEST(DcheckDeathTest, ProbFires) {
  EXPECT_DEATH(GALE_DCHECK_PROB(1.5), "not a probability: 1.5");
  EXPECT_DEATH(GALE_DCHECK_PROB(-0.2), "not a probability");
}

// Library code compiled into this test links the release-mode (checks-off)
// objects; the contracts in la/nn/prop only fire when the whole build is
// configured with GALE_DEBUG_CHECKS=ON (tools/check_all.sh does). These
// death tests exercise the accessor contracts via the header-inline path,
// which does honor this TU's macro setting.
TEST(DcheckDeathTest, MatrixAccessorContracts) {
  la::Matrix m(2, 3);
  EXPECT_DEATH(m.At(2, 0), "out of range");
  EXPECT_DEATH(m.At(0, 3), "out of range");
  // One-past-end row pointer is an allowed base pointer...
  EXPECT_EQ(m.RowPtr(2), m.RowPtr(0) + 2 * 3);
  // ...but beyond that is a contract violation.
  EXPECT_DEATH(m.RowPtr(3), "Check failed:");
}

// --- predicate helpers ------------------------------------------------------

TEST(CheckInternalTest, AllFinite) {
  using util::check_internal::AllFinite;
  EXPECT_TRUE(AllFinite(std::vector<double>{}));
  EXPECT_TRUE(AllFinite(std::vector<double>{1.0, -1e300}));
  EXPECT_FALSE(AllFinite(std::vector<double>{1.0, kInf}));
  EXPECT_FALSE(AllFinite(std::vector<double>{kNan}));
  const double raw[] = {1.0, 2.0, kNan};
  EXPECT_TRUE(AllFinite(raw, 2));
  EXPECT_FALSE(AllFinite(raw, 3));
}

TEST(CheckInternalTest, AllNonNegative) {
  using util::check_internal::AllNonNegative;
  EXPECT_TRUE(AllNonNegative(std::vector<double>{0.0, 1.0}));
  EXPECT_FALSE(AllNonNegative(std::vector<double>{-1e-12}));
  // NaN is not >= 0 — a poisoned vector fails, it does not pass vacuously.
  EXPECT_FALSE(AllNonNegative(std::vector<double>{kNan}));
}

TEST(CheckInternalTest, OnSimplex) {
  using util::check_internal::OnSimplex;
  const double uniform[] = {0.25, 0.25, 0.25, 0.25};
  EXPECT_TRUE(OnSimplex(uniform, 4));
  const double unnormalized[] = {0.5, 0.6};
  EXPECT_FALSE(OnSimplex(unnormalized, 2));
  const double negative[] = {-0.1, 1.1};
  EXPECT_FALSE(OnSimplex(negative, 2));
  const double poisoned[] = {kNan, 1.0};
  EXPECT_FALSE(OnSimplex(poisoned, 2));
  // Range overload agrees with the pointer one.
  EXPECT_TRUE(OnSimplex(std::vector<double>{0.5, 0.5}));
  EXPECT_FALSE(OnSimplex(std::vector<double>{0.9, 0.3}));
}

}  // namespace
}  // namespace gale
