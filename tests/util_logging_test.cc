#include "util/logging.h"

#include <gtest/gtest.h>

namespace gale::util {
namespace {

TEST(LoggingTest, LevelsFilterMessages) {
  // Capture stderr around a filtered and an unfiltered message.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  GALE_LOG(Info) << "should be filtered";
  GALE_LOG(Error) << "should appear";
  const std::string output = ::testing::internal::GetCapturedStderr();
  SetLogLevel(original);
  EXPECT_EQ(output.find("should be filtered"), std::string::npos);
  EXPECT_NE(output.find("should appear"), std::string::npos);
}

TEST(LoggingTest, MessagesCarryFileAndLevelTag) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  GALE_LOG(Warning) << "tagged";
  const std::string output = ::testing::internal::GetCapturedStderr();
  SetLogLevel(original);
  EXPECT_NE(output.find("[W util_logging_test.cc:"), std::string::npos);
}

using LoggingDeathTest = LoggingTest_LevelsFilterMessages_Test;

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ GALE_CHECK(1 == 2) << "impossible"; },
               "Check failed: 1 == 2");
}

TEST(CheckDeathTest, PassingCheckIsSilent) {
  GALE_CHECK(true) << "never evaluated";
  GALE_CHECK_EQ(2 + 2, 4);
  GALE_CHECK_LT(1, 2);
  GALE_CHECK_LE(2, 2);
  GALE_CHECK_GT(3, 2);
  GALE_CHECK_GE(3, 3);
  GALE_CHECK_NE(1, 2);
  SUCCEED();
}

TEST(CheckDeathTest, ComparisonMacrosPrintOperands) {
  EXPECT_DEATH({ GALE_CHECK_EQ(3, 5); }, "\\(3 vs 5\\)");
  EXPECT_DEATH({ GALE_CHECK_LT(9, 2); }, "\\(9 vs 2\\)");
}

TEST(CheckDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(
      { GALE_CHECK_OK(Status::NotFound("missing thing")); },
      "NotFound: missing thing");
  GALE_CHECK_OK(Status::Ok());  // no effect
}

}  // namespace
}  // namespace gale::util
