#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace gale::util {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) counts[rng.Categorical(weights)] += 1;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.Categorical(weights));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(17);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementKGreaterThanN) {
  Rng rng(17);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng forked = a.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == forked.Next());
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace gale::util
