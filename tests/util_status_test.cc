#include "util/status.h"

#include <gtest/gtest.h>

namespace gale::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Overloaded("x").code(), StatusCode::kOverloaded);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOverloaded), "Overloaded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DataLoss");
}

TEST(ResultVoidTest, DefaultIsOk) {
  Result<void> r;
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOk);
}

TEST(ResultVoidTest, HoldsError) {
  Result<void> r = Status::InvalidArgument("bad option");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Status PropagatesVoidResult() {
  Result<void> validated = Status::Overloaded("queue full");
  GALE_RETURN_IF_ERROR(validated.status());
  return Status::Ok();
}

TEST(ResultVoidTest, StatusFeedsReturnIfError) {
  EXPECT_EQ(PropagatesVoidResult().code(), StatusCode::kOverloaded);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsNormalizedToInternalError) {
  Result<int> r(Status::Ok());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status FailingHelper() { return Status::OutOfRange("idx"); }

Status UsesReturnIfError() {
  GALE_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace gale::util
