#include "util/string_util.h"

#include <gtest/gtest.h>

namespace gale::util {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, DropsRuns) {
  EXPECT_EQ(SplitWhitespace("  foo \t bar\nbaz "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, Trims) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\ta b\n"), "a b");
}

TEST(ToLowerTest, Lowers) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
}

TEST(PrefixSuffixTest, Works) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

struct EditCase {
  const char* a;
  const char* b;
  size_t expected;
};

class EditDistanceTest : public ::testing::TestWithParam<EditCase> {};

TEST_P(EditDistanceTest, MatchesExpected) {
  const EditCase& c = GetParam();
  EXPECT_EQ(EditDistance(c.a, c.b), c.expected);
  EXPECT_EQ(EditDistance(c.b, c.a), c.expected) << "symmetric";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EditDistanceTest,
    ::testing::Values(EditCase{"", "", 0}, EditCase{"a", "", 1},
                      EditCase{"abc", "abc", 0}, EditCase{"abc", "abd", 1},
                      EditCase{"abc", "ab", 1}, EditCase{"abc", "xabc", 1},
                      EditCase{"kitten", "sitting", 3},
                      EditCase{"flaw", "lawn", 2},
                      EditCase{"Malvaceae", "Melvaceae", 1}));

TEST(EditDistanceTest, CapShortCircuits) {
  // Distance is 3; a cap of 1 must return cap + 1.
  EXPECT_EQ(EditDistance("kitten", "sitting", 1), 2u);
  // Length difference alone can exceed the cap.
  EXPECT_EQ(EditDistance("a", "abcdef", 2), 3u);
  // Within the cap the exact value comes back.
  EXPECT_EQ(EditDistance("kitten", "sitting", 5), 3u);
}

TEST(FnvHashTest, StableAndSpreads) {
  EXPECT_EQ(Fnv1aHash("abc"), Fnv1aHash("abc"));
  EXPECT_NE(Fnv1aHash("abc"), Fnv1aHash("abd"));
  EXPECT_NE(Fnv1aHash(""), Fnv1aHash("a"));
}

TEST(FormatDoubleTest, Formats) {
  EXPECT_EQ(FormatDouble(0.73219, 4), "0.7322");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace gale::util
