#include "util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace gale::util {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Data", "F1"});
  t.AddRow({"SP", "0.7666"});
  t.AddRow({"UserGroup1", "0.72"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Data"), std::string::npos);
  EXPECT_NE(out.find("UserGroup1"), std::string::npos);
  // Header and both rows plus the rule line.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, HandlesShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("1"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"x", "y"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(SeriesPrinterTest, PrintsPoints) {
  SeriesPrinter s("p_e", {"GCN", "GALE"});
  s.AddPoint(0.1, {0.41, 0.62});
  s.AddPoint(0.5, {0.52, 0.66});
  std::ostringstream os;
  s.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("p_e=0.100"), std::string::npos);
  EXPECT_NE(out.find("GCN=0.4100"), std::string::npos);
  EXPECT_NE(out.find("GALE=0.6600"), std::string::npos);
}

}  // namespace
}  // namespace gale::util
