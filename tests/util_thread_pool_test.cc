#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace gale::util {
namespace {

TEST(ThreadPoolTest, StartupShutdownRunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.num_workers(), 3);
    std::atomic<int> remaining{100};
    for (int i = 0; i < 100; ++i) {
      pool.Enqueue([&] {
        counter.fetch_add(1);
        remaining.fetch_sub(1);
      });
    }
    while (remaining.load() > 0) std::this_thread::yield();
  }  // destructor drains and joins
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkerPoolConstructsAndDestructs) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
}

TEST(ThreadPoolTest, WorkersReportInParallelRegion) {
  EXPECT_FALSE(InParallelRegion());
  ThreadPool pool(1);
  std::atomic<int> in_region{-1};
  std::atomic<bool> done{false};
  pool.Enqueue([&] {
    in_region.store(InParallelRegion() ? 1 : 0);
    done.store(true);
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_EQ(in_region.load(), 1);
}

TEST(ParallelismTest, ScopedOverrideAndReset) {
  ScopedParallelism outer(3);
  EXPECT_EQ(Parallelism(), 3);
  {
    ScopedParallelism inner(1);
    EXPECT_EQ(Parallelism(), 1);
  }
  EXPECT_EQ(Parallelism(), 3);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ScopedParallelism p(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, hits.size(), 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyAndSingletonRanges) {
  ScopedParallelism p(4);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<size_t> seen;
  ParallelFor(7, 8, 1, [&](size_t b, size_t e) {
    seen.push_back(b);
    seen.push_back(e);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 7u);
  EXPECT_EQ(seen[1], 8u);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInline) {
  ScopedParallelism p(4);
  // grain >= range forces a single shard, executed on the calling thread.
  int calls = 0;
  bool on_caller = false;
  ParallelFor(0, 100, 1000, [&](size_t b, size_t e) {
    ++calls;
    on_caller = !InParallelRegion();
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 100u);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(on_caller);
}

TEST(ParallelForTest, GrainZeroTreatedAsOne) {
  ScopedParallelism p(2);
  std::atomic<size_t> total{0};
  ParallelFor(0, 64, 0, [&](size_t b, size_t e) { total.fetch_add(e - b); });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ParallelForTest, SerialParallelismNeverSpawnsPool) {
  ScopedParallelism p(1);
  bool saw_worker = false;
  ParallelFor(0, 10000, 1, [&](size_t b, size_t e) {
    if (InParallelRegion()) saw_worker = true;
    (void)b;
    (void)e;
  });
  EXPECT_FALSE(saw_worker);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ScopedParallelism p(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](size_t b, size_t) {
                    if (b >= 50) throw std::runtime_error("shard failure");
                  }),
      std::runtime_error);
  // The pool survives a throwing region and runs subsequent work.
  std::atomic<size_t> total{0};
  ParallelFor(0, 100, 1, [&](size_t b, size_t e) { total.fetch_add(e - b); });
  EXPECT_EQ(total.load(), 100u);
}

TEST(ParallelForTest, LowestShardExceptionWins) {
  ScopedParallelism p(4);
  try {
    ParallelFor(0, 4, 1, [&](size_t b, size_t) {
      throw std::runtime_error("shard " + std::to_string(b));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 0");
  }
}

TEST(ParallelForTest, NestedCallRunsInlineWithoutDeadlock) {
  ScopedParallelism p(4);
  std::vector<std::atomic<int>> hits(256);
  ParallelFor(0, 16, 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      // Nested region: must run inline on this worker, not re-enter the
      // pool (which would deadlock a single queue).
      ParallelFor(0, 16, 1, [&](size_t nb, size_t ne) {
        for (size_t j = nb; j < ne; ++j) hits[i * 16 + j].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForShardsTest, PartitionIndependentOfThreadCount) {
  auto boundaries_at = [](int threads) {
    ScopedParallelism p(threads);
    std::vector<std::vector<size_t>> out;
    std::mutex mu;
    ParallelForShards(0, 10000, 256, [&](size_t s, size_t b, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      out.push_back({s, b, e});
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto serial = boundaries_at(1);
  EXPECT_EQ(serial.size(), NumReduceShards(10000, 256));
  EXPECT_EQ(serial, boundaries_at(2));
  EXPECT_EQ(serial, boundaries_at(4));
  EXPECT_EQ(serial, boundaries_at(7));
}

TEST(ParallelForShardsTest, ShardCountCappedAndCoversRange) {
  EXPECT_EQ(NumReduceShards(0, 100), 0u);
  EXPECT_EQ(NumReduceShards(1, 100), 1u);
  EXPECT_EQ(NumReduceShards(100, 100), 1u);
  EXPECT_EQ(NumReduceShards(101, 100), 2u);
  EXPECT_EQ(NumReduceShards(1 << 20, 1), kMaxReduceShards);

  ScopedParallelism p(4);
  std::vector<std::atomic<int>> hits(997);  // prime, uneven split
  ParallelForShards(0, hits.size(), 100, [&](size_t, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForShardsTest, FixedOrderReductionMatchesSerial) {
  // The canonical use: per-shard partial sums combined in shard order must
  // give bit-identical results at any thread count.
  std::vector<double> values(5000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(static_cast<double>(i)) * 1e3;
  }
  auto chunked_sum = [&](int threads) {
    ScopedParallelism p(threads);
    const size_t shards = NumReduceShards(values.size(), 512);
    std::vector<double> partial(shards, 0.0);
    ParallelForShards(0, values.size(), 512,
                      [&](size_t s, size_t b, size_t e) {
                        for (size_t i = b; i < e; ++i) partial[s] += values[i];
                      });
    double total = 0.0;
    for (double v : partial) total += v;
    return total;
  };
  const double serial = chunked_sum(1);
  EXPECT_EQ(serial, chunked_sum(2));
  EXPECT_EQ(serial, chunked_sum(4));
  EXPECT_EQ(serial, chunked_sum(8));
}

}  // namespace
}  // namespace gale::util
