#include "analyze/annotations.h"

#include <algorithm>
#include <sstream>

namespace gale::analyze {
namespace {

// Line of the last token of the statement that begins at token index
// `start`: the first `;`, `{`, or `}` at the statement's own bracket
// depth ends it. Falls back to the start line when the stream ends first.
int StatementEndLine(const TokenFile& tf, size_t start) {
  int depth = 0;
  for (size_t i = start; i < tf.tokens.size(); ++i) {
    const Tok& t = tf.tokens[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "[") ++depth;
    if (t.text == ")" || t.text == "]") --depth;
    if (depth <= 0 && (t.text == ";" || t.text == "{" || t.text == "}")) {
      return t.line;
    }
  }
  return tf.tokens[start].line;
}

// True when any token sits on `line` (the allow comment trails code).
bool LineHasCode(const TokenFile& tf, int line) {
  const auto it = std::lower_bound(
      tf.tokens.begin(), tf.tokens.end(), line,
      [](const Tok& t, int l) { return t.line < l; });
  return it != tf.tokens.end() && it->line == line;
}

}  // namespace

Annotations ParseAnnotations(const std::string& file, const TokenFile& tf,
                             const std::set<std::string>& known_rules) {
  Annotations out;
  for (const auto& [line, comment] : tf.comments) {
    // An annotation is a comment whose text BEGINS with the marker
    // (after the comment punctuation itself); prose that merely quotes
    // the contract mid-sentence is not parsed.
    const size_t text = comment.find_first_not_of(" \t/");
    if (text == std::string::npos ||
        comment.compare(text, 10, "gale-lint:") != 0) {
      continue;
    }
    size_t at = comment.find("allow(", text + 10);
    if (at == std::string::npos) continue;
    const size_t open = at + 5;
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) continue;
    std::string rules = comment.substr(open + 1, close - open - 1);
    std::replace(rules.begin(), rules.end(), ',', ' ');

    // Coverage: own line, plus either the next line (trailing comment) or
    // the whole statement starting on the next line (standalone comment).
    int last = line + 1;
    if (!LineHasCode(tf, line)) {
      const auto it = std::lower_bound(
          tf.tokens.begin(), tf.tokens.end(), line + 1,
          [](const Tok& t, int l) { return t.line < l; });
      if (it != tf.tokens.end() && it->line == line + 1) {
        const size_t start =
            static_cast<size_t>(it - tf.tokens.begin());
        last = std::max(last, StatementEndLine(tf, start));
        last = std::min(last, line + kMaxAllowSpanLines);
      }
    }

    std::istringstream split(rules);
    std::string rule;
    while (split >> rule) {
      if (known_rules.count(rule) == 0) {
        out.findings.push_back(
            {file, line, "allow-unknown-rule",
             "allow(" + rule +
                 ") names a rule that does not exist — a typo'd "
                 "suppression masks nothing and must be fixed (run with "
                 "--list-rules for the registry)"});
      }
      out.allow[rule].push_back({line, last});
    }

    // Require a justification after the rule list: ": why".
    const std::string tail = comment.substr(close + 1);
    if (tail.find_first_not_of(" \t:") == std::string::npos) {
      out.findings.push_back(
          {file, line, "allow-reason",
           "gale-lint: allow() without a justification — say why after "
           "the rule list"});
    }
  }
  return out;
}

bool Suppressed(const Annotations& ann, const std::string& rule, int line) {
  const auto it = ann.allow.find(rule);
  if (it == ann.allow.end()) return false;
  for (const auto& [first, last] : it->second) {
    if (line >= first && line <= last) return true;
  }
  return false;
}

}  // namespace gale::analyze
