// Suppression annotations: `// gale-lint: allow(<rule>[, <rule>...]): why`.
//
// Scope contract (exact, and pinned by self-test fixtures):
//  * Only a comment whose text BEGINS with `gale-lint:` is an
//    annotation; prose that quotes the marker mid-sentence is ignored.
//  * An allow comment suppresses the named rules on its own line.
//  * A *standalone* allow comment (no code tokens on its line) also
//    suppresses the whole statement that begins on the next line: coverage
//    extends from the next line to the line of the first `;`, `{`, or `}`
//    at the statement's own bracket depth, capped at kMaxAllowSpanLines.
//    A multi-line call or declaration under an allow is therefore covered
//    in full — not just its first line.
//  * A *trailing* allow comment (code and comment on one line) suppresses
//    its own line and the next line only, so it cannot silently swallow
//    an unrelated statement below it.
//
// Annotation hygiene is itself checked: an allow with no justification
// after the rule list is an `allow-reason` finding, and a rule name that
// is not in the registry is an `allow-unknown-rule` finding (a typo'd
// suppression must never silently mask a real violation).

#ifndef GALE_TOOLS_ANALYZE_ANNOTATIONS_H_
#define GALE_TOOLS_ANALYZE_ANNOTATIONS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/finding.h"
#include "analyze/token.h"

namespace gale::analyze {

// Statement coverage never extends more than this many lines past the
// allow comment; a suppression that "needs" more is hiding too much.
inline constexpr int kMaxAllowSpanLines = 32;

struct Annotations {
  // rule -> inclusive [first, last] line ranges suppressed for that rule.
  std::map<std::string, std::vector<std::pair<int, int>>> allow;
  // allow-reason / allow-unknown-rule hygiene findings.
  std::vector<Finding> findings;
};

// Parses every allow comment in `tf`. `known_rules` is the full rule
// registry (see rules.h); names outside it produce allow-unknown-rule
// findings but are still recorded as suppressions, so one typo does not
// cascade into a second finding for the rule the author meant to name.
Annotations ParseAnnotations(const std::string& file, const TokenFile& tf,
                             const std::set<std::string>& known_rules);

bool Suppressed(const Annotations& ann, const std::string& rule, int line);

}  // namespace gale::analyze

#endif  // GALE_TOOLS_ANALYZE_ANNOTATIONS_H_
