#ifndef GALE_TOOLS_ANALYZE_FINDING_H_
#define GALE_TOOLS_ANALYZE_FINDING_H_

#include <string>
#include <tuple>

namespace gale::analyze {

// One rule violation. Findings are value objects; the scanner orders the
// final report by (file, line, rule, message) so output is deterministic
// regardless of thread count or cache state.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

inline bool operator<(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.rule, a.message) <
         std::tie(b.file, b.line, b.rule, b.message);
}

inline bool operator==(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.rule, a.message) ==
         std::tie(b.file, b.line, b.rule, b.message);
}

}  // namespace gale::analyze

#endif  // GALE_TOOLS_ANALYZE_FINDING_H_
