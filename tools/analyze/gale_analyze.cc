// gale_analyze — multi-pass, multi-TU static analyzer for the GALE tree.
//
// The successor to the single-TU gale_lint (which now runs on the same
// library and keeps its CLI): token-level single-file rules, a cross-TU
// include-graph pass enforcing the module layering DAG, a parallel scan
// with an incremental cache, and text or SARIF output. See rules.h for
// the rule catalog and annotations.h for the exact allow() suppression
// scope.
//
// Usage:
//   gale_analyze [options] <repo_root>
//   gale_analyze --self-test
//   gale_analyze --list-rules
//
// Options:
//   --format=text|sarif  report format on stdout (default text)
//   --cache=<file>       incremental cache: warm runs re-tokenize only
//                        changed files (mtime+size fast path, content
//                        hash on mismatch)
//   --rules=<id,id,...>  report only these rules (the scan still runs
//                        every pass so the cache stays rule-complete)
//
// Scan statistics go to stderr so stdout is byte-identical across
// cold/warm cache runs and thread counts; CI diffs stdout directly.
// Exit status: 0 clean, 1 findings, 2 usage/configuration error.

#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/output.h"
#include "analyze/rules.h"
#include "analyze/scanner.h"
#include "analyze/selftest.h"

namespace {

int Usage() {
  std::cerr
      << "usage: gale_analyze [--format=text|sarif] [--cache=<file>]\n"
      << "                    [--rules=<id,id,...>] <repo_root>\n"
      << "       gale_analyze --self-test | --list-rules\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string format = "text";
  gale::analyze::ScanOptions options;
  bool self_test = false;
  bool list_rules = false;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "sarif") return Usage();
    } else if (arg.rfind("--cache=", 0) == 0) {
      options.cache_path = arg.substr(8);
    } else if (arg == "--cache" && i + 1 < args.size()) {
      options.cache_path = args[++i];
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::istringstream split(arg.substr(8));
      std::string rule;
      while (std::getline(split, rule, ',')) {
        if (rule.empty()) continue;
        if (gale::analyze::RuleIds().count(rule) == 0) {
          std::cerr << "gale_analyze: unknown rule '" << rule
                    << "' (see --list-rules)\n";
          return 2;
        }
        options.only_rules.insert(rule);
      }
    } else if (!arg.empty() && arg[0] != '-' && root.empty()) {
      root = arg;
    } else {
      return Usage();
    }
  }

  if (self_test) {
    const int failures =
        gale::analyze::RunSelfTest(std::cout, "gale_analyze");
    return failures == 0 ? 0 : 1;
  }
  if (list_rules) {
    for (const gale::analyze::RuleInfo& r : gale::analyze::RuleCatalog()) {
      std::cout << r.id << "  " << r.summary << "\n";
    }
    return 0;
  }
  if (root.empty()) return Usage();

  const gale::analyze::ScanResult result =
      gale::analyze::ScanTree(root, options);
  if (format == "sarif") {
    std::cout << gale::analyze::FormatSarif(result.findings);
  } else {
    std::cout << gale::analyze::FormatText(result.findings);
  }
  std::cerr << "gale_analyze: " << result.stats.files << " file(s), "
            << result.stats.cache_hits << " cache hit(s), "
            << result.stats.retokenized << " re-tokenized, "
            << result.findings.size() << " finding(s)\n";
  return result.findings.empty() ? 0 : 1;
}
