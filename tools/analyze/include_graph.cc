#include "analyze/include_graph.h"

#include <algorithm>
#include <filesystem>
#include <map>

namespace gale::analyze {
namespace {

namespace fs = std::filesystem;

// The layering DAG. Same level = may not include each other (nn/graph);
// lower = includable from above.
const std::map<std::string, int>& ModuleLayers() {
  static const std::map<std::string, int> kLayers = {
      {"util", 0},  {"obs", 1},       {"la", 2},    {"nn", 3},
      {"graph", 3}, {"prop", 4},      {"detect", 5}, {"core", 6},
      {"serve", 7}, {"baselines", 7}, {"store", 8},  {"eval", 8},
  };
  return kLayers;
}

// serve and baselines share a layer: both build on core, and neither may
// include the other. store and eval sit above serve — the store
// assembles serve::ScoringSnapshots at publish time, and eval drives
// everything — but may not include each other (the versioned store never
// reaches into the experiment harness, nor vice versa; see DESIGN.md
// §14 for why store is a serve *producer*, not a layer below it).
const char kDagSpelling[] =
    "util -> obs -> la -> {nn, graph} -> prop -> detect -> core -> "
    "{serve, baselines} -> {store, eval}";

// "src/nn/adam.cc" -> "nn"; "tools/analyze/rules.cc" -> "tools".
std::string ModuleOf(const std::string& rel) {
  const size_t first = rel.find('/');
  if (first == std::string::npos) return rel;
  const std::string head = rel.substr(0, first);
  if (head != "src") return head;
  const size_t second = rel.find('/', first + 1);
  if (second == std::string::npos) return head;
  return rel.substr(first + 1, second - first - 1);
}

bool IsHarnessDir(const std::string& module) {
  return module == "tools" || module == "bench" || module == "tests" ||
         module == "examples";
}

std::string Normalize(const std::string& path) {
  return fs::path(path).lexically_normal().generic_string();
}

// Resolves an include target the way the build does: against the
// includer's directory, then the include roots (src/, tools/, repo root).
// Returns "" when the target is not in the scanned set (system header).
std::string Resolve(const std::string& includer, const std::string& target,
                    const std::set<std::string>& known) {
  const std::string dir = fs::path(includer).parent_path().generic_string();
  const std::string candidates[] = {
      dir.empty() ? target : Normalize(dir + "/" + target),
      Normalize("src/" + target),
      Normalize("tools/" + target),
      Normalize(target),
  };
  for (const std::string& c : candidates) {
    if (known.count(c) > 0) return c;
  }
  return "";
}

struct Edge {
  size_t to = 0;
  int line = 0;
  const std::set<std::string>* allows = nullptr;
};

// Depth-first cycle search over the resolved edges. Nodes are visited in
// sorted-path order and adjacency lists preserve directive order, so the
// same cycles are reported in the same order on every run.
class CycleFinder {
 public:
  CycleFinder(const std::vector<IncludeGraphInput>& files,
              const std::vector<std::vector<Edge>>& adj)
      : files_(files), adj_(adj), color_(files.size(), 0) {}

  std::vector<Finding> Run() {
    for (size_t i = 0; i < files_.size(); ++i) {
      if (color_[i] == 0) Visit(i);
    }
    return std::move(findings_);
  }

 private:
  void Visit(size_t node) {
    color_[node] = 1;
    stack_.push_back(node);
    for (const Edge& e : adj_[node]) {
      if (color_[e.to] == 1) {
        Report(node, e);
      } else if (color_[e.to] == 0) {
        Visit(e.to);
      }
    }
    stack_.pop_back();
    color_[node] = 2;
  }

  void Report(size_t from, const Edge& back_edge) {
    // The cycle is the stack suffix starting at the back edge's target.
    auto it = std::find(stack_.begin(), stack_.end(), back_edge.to);
    if (it == stack_.end()) return;
    std::vector<std::string> cycle;
    for (; it != stack_.end(); ++it) cycle.push_back(files_[*it].path);
    // Canonical key so each cycle is reported once however it is entered.
    std::vector<std::string> key = cycle;
    std::sort(key.begin(), key.end());
    std::string joined;
    for (const std::string& p : key) joined += p + "|";
    if (!seen_.insert(joined).second) return;
    if (back_edge.allows != nullptr &&
        back_edge.allows->count("include-cycle") > 0) {
      return;
    }
    std::string chain;
    for (const std::string& p : cycle) chain += p + " -> ";
    chain += files_[back_edge.to].path;
    findings_.push_back(
        {files_[from].path, back_edge.line, "include-cycle",
         "cyclic include chain " + chain +
             " — header guards hide the cycle from the compiler but the "
             "layering is broken; invert or split the dependency"});
  }

  const std::vector<IncludeGraphInput>& files_;
  const std::vector<std::vector<Edge>>& adj_;
  std::vector<int> color_;
  std::vector<size_t> stack_;
  std::set<std::string> seen_;
  std::vector<Finding> findings_;
};

bool Allows(const std::set<std::string>& allows, const char* rule) {
  return allows.count(rule) > 0;
}

}  // namespace

int ModuleLayer(const std::string& module) {
  const auto it = ModuleLayers().find(module);
  return it == ModuleLayers().end() ? -1 : it->second;
}

std::vector<Finding> IncludeGraphPass(
    const std::vector<IncludeGraphInput>& files) {
  std::set<std::string> known;
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < files.size(); ++i) {
    known.insert(files[i].path);
    index[files[i].path] = i;
  }

  std::vector<Finding> findings;
  std::vector<std::vector<Edge>> adj(files.size());
  static const std::set<std::string> kNoAllows;

  for (size_t i = 0; i < files.size(); ++i) {
    const IncludeGraphInput& f = files[i];
    const bool in_src = f.path.rfind("src/", 0) == 0;
    const std::string from_module = ModuleOf(f.path);
    const int from_layer = ModuleLayer(from_module);
    for (size_t k = 0; k < f.includes.size(); ++k) {
      const IncludeDirective& inc = f.includes[k];
      const std::string target = Resolve(f.path, inc.target, known);
      if (target.empty()) continue;  // system or generated header
      const std::set<std::string>& allows =
          k < f.include_allows.size() ? f.include_allows[k] : kNoAllows;
      adj[i].push_back({index.at(target), inc.line, &allows});

      if (!in_src) continue;  // harness code may include anything

      const std::string to_module = ModuleOf(target);
      if (IsHarnessDir(to_module)) {
        if (!Allows(allows, "harness-include")) {
          findings.push_back(
              {f.path, inc.line, "harness-include",
               "library code includes harness code '" + target +
                   "' — the dependency arrow points src -> "
                   "tools/bench/tests only; move the shared piece into "
                   "src/ or duplicate the helper in the harness"});
        }
        continue;
      }

      if (target == "src/la/simd.h" && from_module != "la" &&
          !Allows(allows, "simd-include")) {
        findings.push_back(
            {f.path, inc.line, "simd-include",
             "direct include of la/simd.h from module '" + from_module +
                 "' — the intrinsics substrate is an la implementation "
                 "detail; use the la kernel wrappers, or justify the "
                 "direct lane-level use with an allow"});
      }

      const int to_layer =
          target.rfind("src/", 0) == 0 ? ModuleLayer(to_module) : -1;
      if (from_layer >= 0 && to_layer >= 0 && to_module != from_module &&
          to_layer >= from_layer && !Allows(allows, "include-layering")) {
        findings.push_back(
            {f.path, inc.line, "include-layering",
             "module '" + from_module + "' (layer " +
                 std::to_string(from_layer) + ") includes '" + inc.target +
                 "' from module '" + to_module + "' (layer " +
                 std::to_string(to_layer) + ") — against the DAG " +
                 kDagSpelling +
                 "; a module may include only itself and strictly lower "
                 "layers"});
      }
    }
  }

  CycleFinder cycles(files, adj);
  std::vector<Finding> cycle_findings = cycles.Run();
  findings.insert(findings.end(), cycle_findings.begin(),
                  cycle_findings.end());
  return findings;
}

}  // namespace gale::analyze
