// Cross-TU include-graph pass: the one analysis that needs every file's
// facts at once. It machine-enforces the architecture the tree has been
// built around since PR 1:
//
//  * include-layering — the module layering DAG
//
//        util → obs → la → {nn, graph} → prop → detect → core
//             → baselines → eval
//
//    A src/ module may include itself and strictly lower layers only.
//    (obs sits between util and la — the ISSUE sketch lists them in the
//    other order, but the la kernels emit obs spans and gale_la links
//    gale_obs, so the enforced DAG follows the real dependency
//    direction; DESIGN.md §11 records the decision.) nn and graph share
//    a level and may not include each other.
//  * harness-include — library code (src/) must never include harness
//    code (tools/, bench/, tests/, examples/); the dependency arrow
//    points one way.
//  * simd-include — src/la/simd.h is reachable only from src/la/: the
//    intrinsics substrate is an la implementation detail, and every
//    direct use elsewhere must carry an allow that argues why the la
//    wrappers don't suffice.
//  * include-cycle — no cyclic include chains anywhere in the tree
//    (header guards make them build, which is exactly why only an
//    analyzer notices).
//
// Include targets are resolved against the scanned file set with the
// project's include roots (the includer's directory, src/, tools/, and
// the repo root); unresolved targets (system headers) are ignored.
// Findings anchor at the offending #include line and honor the standard
// allow() contract via the per-include allow sets captured by the
// single-TU pass.

#ifndef GALE_TOOLS_ANALYZE_INCLUDE_GRAPH_H_
#define GALE_TOOLS_ANALYZE_INCLUDE_GRAPH_H_

#include <set>
#include <string>
#include <vector>

#include "analyze/finding.h"
#include "analyze/token.h"

namespace gale::analyze {

struct IncludeGraphInput {
  std::string path;  // repo-relative, generic separators
  std::vector<IncludeDirective> includes;
  // Parallel to `includes`: rules allow()ed at that directive line.
  std::vector<std::set<std::string>> include_allows;
};

// Runs all cross-TU rules. `files` must be sorted by path; findings come
// back in deterministic order regardless.
std::vector<Finding> IncludeGraphPass(
    const std::vector<IncludeGraphInput>& files);

// Layer of a src/ module in the layering DAG, or -1 for unknown modules
// and harness code. Exposed for the self-test.
int ModuleLayer(const std::string& module);

}  // namespace gale::analyze

#endif  // GALE_TOOLS_ANALYZE_INCLUDE_GRAPH_H_
