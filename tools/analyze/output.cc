#include "analyze/output.h"

#include <sstream>

#include "analyze/rules.h"

namespace gale::analyze {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatText(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

std::string FormatSarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
         "Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"gale_analyze\",\n"
      << "          \"informationUri\": "
         "\"DESIGN.md#11-static-analysis-model\",\n"
      << "          \"rules\": [\n";
  const std::vector<RuleInfo>& catalog = RuleCatalog();
  for (size_t i = 0; i < catalog.size(); ++i) {
    out << "            {\"id\": \"" << JsonEscape(catalog[i].id)
        << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(catalog[i].summary) << "\"}}"
        << (i + 1 < catalog.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\"ruleId\": \"" << JsonEscape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << JsonEscape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << JsonEscape(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}]}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace gale::analyze
