// Report formatting: plain text for humans/ctest, SARIF 2.1.0 for CI
// annotation surfaces. Both are pure functions of the (already sorted)
// finding list, so a byte-compare of two reports is a semantic compare
// of two runs.

#ifndef GALE_TOOLS_ANALYZE_OUTPUT_H_
#define GALE_TOOLS_ANALYZE_OUTPUT_H_

#include <string>
#include <vector>

#include "analyze/finding.h"

namespace gale::analyze {

// One line per finding: `file:line: [rule] message`.
std::string FormatText(const std::vector<Finding>& findings);

// A complete SARIF 2.1.0 document with the full rule catalog as the
// tool's rule metadata and one result per finding.
std::string FormatSarif(const std::vector<Finding>& findings);

}  // namespace gale::analyze

#endif  // GALE_TOOLS_ANALYZE_OUTPUT_H_
