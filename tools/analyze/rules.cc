#include "analyze/rules.h"

#include <cstddef>

#include "analyze/annotations.h"

namespace gale::analyze {
namespace {

using Tokens = std::vector<Tok>;

bool IsPunct(const Tok& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Tok& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// True when the token after `i` is the punctuation `text`.
bool NextIs(const Tokens& toks, size_t i, const char* text) {
  return i + 1 < toks.size() && IsPunct(toks[i + 1], text);
}

// Index of the token matching the opener at `open_idx`, or npos. Depth is
// counted over single tokens, so fused operators never confuse it.
size_t MatchPunct(const Tokens& toks, size_t open_idx, const char* open,
                  const char* close) {
  int depth = 0;
  for (size_t i = open_idx; i < toks.size(); ++i) {
    if (IsPunct(toks[i], open)) ++depth;
    if (IsPunct(toks[i], close)) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------------

struct FileClass {
  bool in_src = false;       // library code under src/
  bool rng_exempt = false;   // src/util/rng.* — the one home for RNG
  bool log_exempt = false;   // src/util/logging.* — the one home for stderr
  bool par_exempt = false;   // src/util/parallel.* — the dispatch substrate
  bool la_exempt = false;    // src/la/* — allocating wrappers + reductions
  bool obs_exempt = false;   // src/obs/* — the one home for clock reads
  bool simd_exempt = false;  // src/la/simd.h — the one home for intrinsics
  bool env_exempt = false;   // src/util/ + src/obs/ — may read process env
};

FileClass Classify(const std::string& rel_path) {
  FileClass fc;
  fc.in_src = rel_path.rfind("src/", 0) == 0;
  fc.rng_exempt = rel_path.rfind("src/util/rng", 0) == 0;
  fc.log_exempt = rel_path.rfind("src/util/logging", 0) == 0;
  fc.par_exempt = rel_path.rfind("src/util/parallel", 0) == 0;
  fc.la_exempt = rel_path.rfind("src/la/", 0) == 0;
  fc.obs_exempt = rel_path.rfind("src/obs/", 0) == 0;
  fc.simd_exempt = rel_path == "src/la/simd.h";
  fc.env_exempt = rel_path.rfind("src/util/", 0) == 0 || fc.obs_exempt;
  return fc;
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

const std::set<std::string>& BannedRngTokens() {
  static const std::set<std::string> kBanned = {
      "rand",        "srand",          "rand_r",
      "drand48",     "lrand48",        "random",
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand", "minstd_rand0",   "default_random_engine",
      "knuth_b",     "ranlux24",       "ranlux48",
  };
  return kBanned;
}

void CheckRng(const std::string& file, const FileClass& fc,
              const TokenFile& tf, const Annotations& ann,
              std::vector<Finding>* findings) {
  if (fc.rng_exempt) return;
  static const std::set<std::string> kClockSeeds = {"time", "clock",
                                                    "gettimeofday"};
  const Tokens& toks = tf.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool banned = BannedRngTokens().count(t.text) > 0;
    const bool clock_call =
        kClockSeeds.count(t.text) > 0 && NextIs(toks, i, "(");
    if (!banned && !clock_call) continue;
    if (Suppressed(ann, "rng", t.line)) continue;
    findings->push_back(
        {file, t.line, "rng",
         "'" + t.text +
             "' — unseeded/wall-clock randomness breaks bit-determinism; "
             "draw from util::Rng (src/util/rng.h) instead"});
  }
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

// Names declared as unordered_map/unordered_set (variables, members,
// parameters). Template arguments may nest; `>>` lexes as two `>` tokens
// so depth counting over single tokens is exact.
std::set<std::string> UnorderedDeclNames(const TokenFile& tf) {
  std::set<std::string> names;
  const Tokens& toks = tf.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (!IsIdent(t, "unordered_map") && !IsIdent(t, "unordered_set")) {
      continue;
    }
    if (!NextIs(toks, i, "<")) continue;
    size_t j = i + 1;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (IsPunct(toks[j], "<")) ++depth;
      if (IsPunct(toks[j], ">")) {
        --depth;
        if (depth == 0) break;
      }
    }
    if (j >= toks.size()) continue;
    ++j;
    while (j < toks.size() &&
           (IsPunct(toks[j], "&") || IsPunct(toks[j], "*"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

void CheckUnorderedIter(const std::string& file, const TokenFile& tf,
                        const std::set<std::string>& unordered_names,
                        const Annotations& ann,
                        std::vector<Finding>* findings) {
  if (unordered_names.empty()) return;
  const Tokens& toks = tf.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "for") || !NextIs(toks, i, "(")) continue;
    const size_t open = i + 1;
    const size_t close = MatchPunct(toks, open, "(", ")");
    if (close == std::string::npos) continue;
    // A plain ':' at depth 1 marks a range-for ('::' is a fused token and
    // never matches); the range expression is everything after it.
    size_t colon = std::string::npos;
    int depth = 0;
    for (size_t p = open; p < close; ++p) {
      const Tok& t = toks[p];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (t.text == ":" && depth == 1) {
        colon = p;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    for (size_t p = colon + 1; p < close; ++p) {
      if (toks[p].kind != TokKind::kIdent) continue;
      if (unordered_names.count(toks[p].text) == 0) continue;
      if (Suppressed(ann, "unordered-iter", toks[i].line)) break;
      findings->push_back(
          {file, toks[i].line, "unordered-iter",
           "range-for over unordered container '" + toks[p].text +
               "' — hash order is unspecified and leaks into results; "
               "sort into a vector first (or justify with an allow)"});
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// io / raw-chrono-timing / naked-new / simd-intrinsics
// ---------------------------------------------------------------------------

void CheckIo(const std::string& file, const FileClass& fc,
             const TokenFile& tf, const Annotations& ann,
             std::vector<Finding>* findings) {
  if (!fc.in_src || fc.log_exempt) return;
  static const std::set<std::string> kBanned = {
      "cout", "cerr", "printf", "fprintf", "puts", "fputs", "putchar"};
  for (const Tok& t : tf.tokens) {
    if (t.kind != TokKind::kIdent || kBanned.count(t.text) == 0) continue;
    if (Suppressed(ann, "io", t.line)) continue;
    findings->push_back({file, t.line, "io",
                         "'" + t.text +
                             "' in library code — route diagnostics through "
                             "util/logging (GALE_LOG / GALE_CHECK)"});
  }
}

void CheckRawChronoTiming(const std::string& file, const FileClass& fc,
                          const TokenFile& tf, const Annotations& ann,
                          std::vector<Finding>* findings) {
  if (!fc.in_src || fc.obs_exempt) return;
  static const std::set<std::string> kBanned = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  for (const Tok& t : tf.tokens) {
    if (t.kind != TokKind::kIdent || kBanned.count(t.text) == 0) continue;
    if (Suppressed(ann, "raw-chrono-timing", t.line)) continue;
    findings->push_back(
        {file, t.line, "raw-chrono-timing",
         "'" + t.text +
             "' in library code — time through obs::Span/obs::Trace "
             "(src/obs/ is the one home for raw clock reads, so "
             "logical-time mode and the run report stay complete)"});
  }
}

void CheckNakedNew(const std::string& file, const TokenFile& tf,
                   const Annotations& ann, std::vector<Finding>* findings) {
  static const std::set<std::string> kBanned = {
      "new", "delete", "malloc", "calloc", "realloc", "free", "strdup"};
  const Tokens& toks = tf.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind != TokKind::kIdent || kBanned.count(t.text) == 0) continue;
    // '= delete' declarations are idiomatic and allowed.
    if (t.text == "delete" && i > 0 && IsPunct(toks[i - 1], "=")) continue;
    if (Suppressed(ann, "naked-new", t.line)) continue;
    findings->push_back(
        {file, t.line, "naked-new",
         "'" + t.text +
             "' — raw allocation; use containers or std::make_unique"});
  }
}

void CheckSimdIntrinsics(const std::string& file, const FileClass& fc,
                         const TokenFile& tf, const Annotations& ann,
                         std::vector<Finding>* findings) {
  if (fc.simd_exempt) return;
  // Vendor intrinsic headers by name, plus the identifier prefixes every
  // x86 intrinsic and vector type uses. Prefix matching keeps the list
  // ISA-complete (_mm_/_mm256_/_mm512_, __m128d/__m256i/...).
  static const std::set<std::string> kBannedHeaders = {
      "immintrin.h", "emmintrin.h", "xmmintrin.h", "pmmintrin.h",
      "smmintrin.h", "tmmintrin.h", "nmmintrin.h", "ammintrin.h",
      "wmmintrin.h", "avxintrin.h", "avx2intrin.h"};
  static const char* kBannedPrefixes[] = {"_mm", "__m128", "__m256",
                                          "__m512"};
  const std::string kMessage =
      "vendor intrinsics live only in src/la/simd.h, where the "
      "bitwise-determinism argument is made once; call the la::simd "
      "primitives instead";
  for (const IncludeDirective& inc : tf.includes) {
    if (kBannedHeaders.count(inc.target) == 0) continue;
    if (Suppressed(ann, "simd-intrinsics", inc.line)) continue;
    findings->push_back({file, inc.line, "simd-intrinsics",
                         "'" + inc.target + "' — " + kMessage});
  }
  for (const Tok& t : tf.tokens) {
    if (t.kind != TokKind::kIdent) continue;
    bool hit = false;
    for (const char* prefix : kBannedPrefixes) {
      if (t.text.rfind(prefix, 0) == 0) {
        hit = true;
        break;
      }
    }
    if (!hit) continue;
    if (Suppressed(ann, "simd-intrinsics", t.line)) continue;
    findings->push_back(
        {file, t.line, "simd-intrinsics", "'" + t.text + "' — " + kMessage});
  }
}

// ---------------------------------------------------------------------------
// shard-noinline
// ---------------------------------------------------------------------------

void CheckShardNoinline(const std::string& file, const FileClass& fc,
                        const TokenFile& tf, const Annotations& ann,
                        std::vector<Finding>* findings) {
  if (!fc.in_src || fc.par_exempt) return;
  const Tokens& toks = tf.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (!IsIdent(t, "ParallelFor") && !IsIdent(t, "ParallelForShards")) {
      continue;
    }
    if (!NextIs(toks, i, "(")) continue;
    const size_t open = i + 1;
    const size_t close = MatchPunct(toks, open, "(", ")");
    if (close == std::string::npos) continue;
    // Find a lambda literal among the arguments.
    size_t lb = std::string::npos;
    for (size_t p = open + 1; p < close; ++p) {
      if (IsPunct(toks[p], "[")) {
        lb = p;
        break;
      }
    }
    if (lb == std::string::npos) continue;  // named callable
    const size_t rb = MatchPunct(toks, lb, "[", "]");
    if (rb == std::string::npos) continue;
    size_t pos = rb + 1;
    if (pos < toks.size() && IsPunct(toks[pos], "(")) {
      const size_t pe = MatchPunct(toks, pos, "(", ")");
      if (pe == std::string::npos) continue;
      pos = pe + 1;
    }
    if (pos >= toks.size() || !IsPunct(toks[pos], "{")) continue;
    const size_t body_end = MatchPunct(toks, pos, "{", "}");
    if (body_end == std::string::npos) continue;
    bool has_loop = false;
    for (size_t p = pos + 1; p < body_end; ++p) {
      if (IsIdent(toks[p], "for") || IsIdent(toks[p], "while")) {
        has_loop = true;
        break;
      }
    }
    if (!has_loop) continue;
    if (Suppressed(ann, "shard-noinline", t.line)) continue;
    findings->push_back(
        {file, t.line, "shard-noinline",
         "loop body inside a " + t.text +
             " closure — the live closure pointer costs registers "
             "(~15% on SpMM); hoist the kernel into a noinline free "
             "function with plain-pointer arguments (DESIGN.md §6)"});
  }
}

// ---------------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------------

// True when the TU is on the allocation-free path: it names la::Workspace
// or calls an *Into kernel. Identifier check, so comments don't count.
bool AdoptedIntoPath(const TokenFile& tf) {
  for (const Tok& t : tf.tokens) {
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "Workspace" || t.text == "BorrowedMatrix") return true;
    if (t.text.size() > 4 &&
        t.text.compare(t.text.size() - 4, 4, "Into") == 0) {
      return true;
    }
  }
  return false;
}

void CheckHotPathAlloc(const std::string& file, const FileClass& fc,
                       const TokenFile& tf, bool adopted,
                       const Annotations& ann,
                       std::vector<Finding>* findings) {
  if (!fc.in_src || fc.la_exempt || !adopted) return;
  // The allocating kernels with an *Into twin. Whole-identifier matches
  // followed by '(' — `MatMulInto` is its own token and never matches
  // `MatMul`.
  static const std::set<std::string> kAllocating = {
      "MatMul",        "TransposedMatMul", "MatMulTransposed",
      "Transposed",    "Multiply",         "MultiplyVector",
      "SelectRows",    "ColSum",           "ColMean",
  };
  const Tokens& toks = tf.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind != TokKind::kIdent || kAllocating.count(t.text) == 0) continue;
    if (!NextIs(toks, i, "(")) continue;
    if (Suppressed(ann, "hot-path-alloc", t.line)) continue;
    findings->push_back(
        {file, t.line, "hot-path-alloc",
         "allocating '" + t.text +
             "(...)' in a file already on the *Into path — every call "
             "allocates a fresh buffer; write into a warm buffer with the "
             "*Into form, or justify a cold-path call with an allow"});
  }
}

// ---------------------------------------------------------------------------
// float-compare
// ---------------------------------------------------------------------------

// Value (non-pointer) identifiers declared with a floating type:
// `double x`, `const double& x`, `double x, y`, members, parameters,
// range-for bindings. Pointer declarators are skipped — `p != nullptr`
// on a double* is exact and fine. With include_params=false, declarators
// inside parentheses are skipped too: a sibling header's function
// parameter names never exist in the .cc's scope, so importing them
// would flag unrelated same-named locals. Known blind spots (documented
// in DESIGN.md §11): floating values reached through containers, `auto`,
// or function returns; those still flag when compared against a floating
// literal, which covers the common sentinel pattern.
std::set<std::string> FloatValueNames(const TokenFile& tf,
                                      bool include_params) {
  std::set<std::string> names;
  const Tokens& toks = tf.tokens;
  int paren_depth = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (IsPunct(toks[i], "(")) ++paren_depth;
    if (IsPunct(toks[i], ")")) --paren_depth;
    if (!include_params && paren_depth > 0) continue;
    if (!IsIdent(toks[i], "double") && !IsIdent(toks[i], "float")) continue;
    size_t j = i + 1;
    bool pointer = false;
    while (j < toks.size()) {
      if (IsPunct(toks[j], "*")) {
        pointer = true;
        ++j;
      } else if (IsPunct(toks[j], "&") || IsPunct(toks[j], "&&") ||
                 IsIdent(toks[j], "const")) {
        ++j;
      } else {
        break;
      }
    }
    // Declarator chain: ident followed by a terminator; ',' continues the
    // chain (`double a, b;`), '(' means a function declaration (skip).
    while (j + 1 < toks.size() && toks[j].kind == TokKind::kIdent) {
      const Tok& next = toks[j + 1];
      const bool terminates =
          next.kind == TokKind::kPunct &&
          (next.text == "," || next.text == ";" || next.text == "=" ||
           next.text == ")" || next.text == "]" || next.text == "{" ||
           next.text == ":" || next.text == "}");
      if (!terminates) break;
      if (!pointer) names.insert(toks[j].text);
      if (next.text != ",") break;
      j += 2;
      pointer = false;
      while (j < toks.size() &&
             (IsPunct(toks[j], "*") || IsPunct(toks[j], "&"))) {
        pointer = pointer || IsPunct(toks[j], "*");
        ++j;
      }
    }
  }
  return names;
}

bool IsFloatLiteral(const Tok& t) {
  if (t.kind != TokKind::kNumber) return false;
  if (t.text.size() >= 2 && t.text[0] == '0' &&
      (t.text[1] == 'x' || t.text[1] == 'X')) {
    return false;
  }
  return t.text.find('.') != std::string::npos ||
         t.text.find('e') != std::string::npos ||
         t.text.find('E') != std::string::npos;
}

void CheckFloatCompare(const std::string& file, const FileClass& fc,
                       const TokenFile& tf,
                       const std::set<std::string>& float_names,
                       const Annotations& ann,
                       std::vector<Finding>* findings) {
  if (!fc.in_src) return;
  const Tokens& toks = tf.tokens;
  auto floating = [&](const Tok& t) {
    return IsFloatLiteral(t) ||
           (t.kind == TokKind::kIdent && float_names.count(t.text) > 0);
  };
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsPunct(toks[i], "==") && !IsPunct(toks[i], "!=")) continue;
    bool hit = i > 0 && floating(toks[i - 1]);
    size_t r = i + 1;
    if (r < toks.size() &&
        (IsPunct(toks[r], "-") || IsPunct(toks[r], "+"))) {
      ++r;  // unary sign on the right operand
    }
    hit = hit || (r < toks.size() && floating(toks[r]));
    if (!hit) continue;
    if (Suppressed(ann, "float-compare", toks[i].line)) continue;
    findings->push_back(
        {file, toks[i].line, "float-compare",
         "'" + toks[i].text +
             "' with a floating operand — exact FP equality is not "
             "portable across ISAs/partitions; compare against an "
             "explicit tolerance, use <=/>= for sentinel checks, or "
             "justify bitwise-intent with an allow"});
  }
}

// ---------------------------------------------------------------------------
// nondet-reduce
// ---------------------------------------------------------------------------

void CheckNondetReduce(const std::string& file, const FileClass& fc,
                       const TokenFile& tf, const Annotations& ann,
                       std::vector<Finding>* findings) {
  if (!fc.in_src || fc.la_exempt) return;
  static const std::set<std::string> kBanned = {
      "accumulate", "reduce", "transform_reduce", "inner_product"};
  const Tokens& toks = tf.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind != TokKind::kIdent || kBanned.count(t.text) == 0) continue;
    // Require the qualified call form std::accumulate( — a parameter or
    // member named `accumulate` is not a reduction.
    if (!NextIs(toks, i, "(")) continue;
    if (i < 2 || !IsPunct(toks[i - 1], "::") || !IsIdent(toks[i - 2], "std")) {
      continue;
    }
    if (Suppressed(ann, "nondet-reduce", t.line)) continue;
    findings->push_back(
        {file, t.line, "nondet-reduce",
         "'std::" + t.text +
             "' — library reductions fix neither shard boundaries nor "
             "combination order, so results drift across partitions and "
             "thread counts; reduce through the la kernels "
             "(ParallelForShards partials combined in shard order) or "
             "write the loop explicitly"});
  }
}

// ---------------------------------------------------------------------------
// env-read
// ---------------------------------------------------------------------------

void CheckEnvRead(const std::string& file, const FileClass& fc,
                  const TokenFile& tf, const Annotations& ann,
                  std::vector<Finding>* findings) {
  if (!fc.in_src || fc.env_exempt) return;
  static const std::set<std::string> kBanned = {
      "getenv", "secure_getenv", "setenv", "putenv", "unsetenv"};
  const Tokens& toks = tf.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind != TokKind::kIdent || kBanned.count(t.text) == 0) continue;
    if (!NextIs(toks, i, "(")) continue;
    if (Suppressed(ann, "env-read", t.line)) continue;
    findings->push_back(
        {file, t.line, "env-read",
         "'" + t.text +
             "' — ambient process state read outside src/util//src/obs/; "
             "configuration enters library code through explicit "
             "parameters so runs are reproducible from their inputs"});
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry + per-file driver
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"rng", "unseeded or wall-clock randomness outside src/util/rng"},
      {"unordered-iter", "range-for over an unordered container"},
      {"io", "stdout/stderr output in library code"},
      {"naked-new", "raw new/delete/malloc/free"},
      {"shard-noinline", "loop body inside a ParallelFor* closure"},
      {"raw-chrono-timing", "std::chrono clock read outside src/obs/"},
      {"simd-intrinsics", "vendor SIMD intrinsics outside src/la/simd.h"},
      {"hot-path-alloc", "allocating kernel call in a TU on the *Into path"},
      {"float-compare", "==/!= with a floating operand in src/"},
      {"nondet-reduce",
       "std::accumulate/std::reduce family outside src/la/"},
      {"env-read", "environment access outside src/util/ + src/obs/"},
      {"include-layering",
       "include edge against the module layering DAG"},
      {"include-cycle", "cyclic include chain"},
      {"harness-include", "src/ file including tools//bench//tests/ code"},
      {"simd-include", "direct include of src/la/simd.h outside src/la/"},
      {"allow-reason", "allow() annotation without a justification"},
      {"allow-unknown-rule", "allow() naming a rule that does not exist"},
  };
  return kCatalog;
}

const std::set<std::string>& RuleIds() {
  static const std::set<std::string> kIds = [] {
    std::set<std::string> ids;
    for (const RuleInfo& r : RuleCatalog()) ids.insert(r.id);
    return ids;
  }();
  return kIds;
}

FileFacts AnalyzeFileContent(const std::string& rel_path,
                             const std::string& content,
                             const std::string& sibling_header) {
  const FileClass fc = Classify(rel_path);
  const TokenFile tf = Lex(content);
  const Annotations ann = ParseAnnotations(rel_path, tf, RuleIds());

  std::set<std::string> unordered_names = UnorderedDeclNames(tf);
  std::set<std::string> float_names =
      FloatValueNames(tf, /*include_params=*/true);
  bool adopted = AdoptedIntoPath(tf);
  if (!sibling_header.empty()) {
    const TokenFile header = Lex(sibling_header);
    for (const std::string& name : UnorderedDeclNames(header)) {
      unordered_names.insert(name);
    }
    for (const std::string& name :
         FloatValueNames(header, /*include_params=*/false)) {
      float_names.insert(name);
    }
    // A .cc whose header holds the Workspace member is on the hot path
    // even if the .cc itself never names the type.
    adopted = adopted || AdoptedIntoPath(header);
  }

  FileFacts facts;
  facts.findings = ann.findings;
  CheckRng(rel_path, fc, tf, ann, &facts.findings);
  CheckUnorderedIter(rel_path, tf, unordered_names, ann, &facts.findings);
  CheckIo(rel_path, fc, tf, ann, &facts.findings);
  CheckRawChronoTiming(rel_path, fc, tf, ann, &facts.findings);
  CheckNakedNew(rel_path, tf, ann, &facts.findings);
  CheckShardNoinline(rel_path, fc, tf, ann, &facts.findings);
  CheckSimdIntrinsics(rel_path, fc, tf, ann, &facts.findings);
  CheckHotPathAlloc(rel_path, fc, tf, adopted, ann, &facts.findings);
  CheckFloatCompare(rel_path, fc, tf, float_names, ann, &facts.findings);
  CheckNondetReduce(rel_path, fc, tf, ann, &facts.findings);
  CheckEnvRead(rel_path, fc, tf, ann, &facts.findings);

  facts.includes = tf.includes;
  facts.include_allows.reserve(facts.includes.size());
  for (const IncludeDirective& inc : facts.includes) {
    std::set<std::string> allowed;
    for (const auto& [rule, ranges] : ann.allow) {
      for (const auto& [first, last] : ranges) {
        if (inc.line >= first && inc.line <= last) {
          allowed.insert(rule);
          break;
        }
      }
    }
    facts.include_allows.push_back(std::move(allowed));
  }
  return facts;
}

}  // namespace gale::analyze
