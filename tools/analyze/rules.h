// Per-file (single-TU) rule passes and the rule registry.
//
// Every rule operates on the token stream produced by analyze::Lex — no
// regexes over blanked text. The registry is the single source of truth
// for rule ids: annotations validate allow() names against it, the SARIF
// exporter emits it as the tool's rule catalog, and --list-rules prints
// it.
//
// Rule catalog (ids are what allow() annotations name):
//
// Single-TU determinism/safety rules (since PR 2-5):
//   rng              unseeded / wall-clock randomness outside src/util/rng
//   unordered-iter   range-for over an unordered container variable
//   io               std::cout/printf-family output in src/
//   naked-new        raw new/delete/malloc/free anywhere in the tree
//   shard-noinline   loops inside ParallelFor* closures in src/
//   raw-chrono-timing std::chrono clock reads in src/ outside src/obs/
//   simd-intrinsics  vendor SIMD intrinsics outside src/la/simd.h
//   hot-path-alloc   allocating kernel calls in a TU on the *Into path
//
// Token-level float-determinism rules (new in this PR):
//   float-compare    ==/!= with a floating operand in src/ — exact FP
//                    equality silently diverges across ISAs/partitions;
//                    compare against an explicit tolerance, or branch on
//                    <=/>= when the sentinel semantics allow it
//   nondet-reduce    std::accumulate / std::reduce / std::transform_reduce
//                    in src/ outside src/la/ — reductions must go through
//                    the la kernels (fixed shard boundaries, fixed
//                    combination order) to stay bitwise thread-invariant
//   env-read         getenv/setenv outside src/util/ + src/obs/ —
//                    configuration enters through explicit parameters, not
//                    ambient process state
//
// Cross-TU include-graph rules (include_graph.h):
//   include-layering, include-cycle, harness-include, simd-include
//
// Annotation hygiene (annotations.h): allow-reason, allow-unknown-rule.

#ifndef GALE_TOOLS_ANALYZE_RULES_H_
#define GALE_TOOLS_ANALYZE_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "analyze/finding.h"
#include "analyze/token.h"

namespace gale::analyze {

struct RuleInfo {
  std::string id;
  std::string summary;
};

// Every rule id the analyzer can emit, in stable catalog order.
const std::vector<RuleInfo>& RuleCatalog();

// The ids from RuleCatalog() as a set (for allow() validation).
const std::set<std::string>& RuleIds();

// Everything the scanner derives from one file in isolation. This is the
// unit the incremental cache stores: per-file findings are final, and
// `includes` + `include_allows` feed the cross-TU include-graph pass,
// which is recomputed from these facts on every run.
struct FileFacts {
  std::vector<Finding> findings;
  std::vector<IncludeDirective> includes;
  // Parallel to `includes`: rules allow()ed on/above that directive line.
  std::vector<std::set<std::string>> include_allows;
};

// Runs every single-TU rule over `content`. `sibling_header` is the
// paired .h of a .cc (empty if none): member declarations there feed the
// unordered-container, float-identifier, and *Into-adoption analyses of
// the .cc.
FileFacts AnalyzeFileContent(const std::string& rel_path,
                             const std::string& content,
                             const std::string& sibling_header);

}  // namespace gale::analyze

#endif  // GALE_TOOLS_ANALYZE_RULES_H_
