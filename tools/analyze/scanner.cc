#include "analyze/scanner.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "analyze/include_graph.h"
#include "analyze/rules.h"
#include "util/parallel.h"

namespace gale::analyze {
namespace {

namespace fs = std::filesystem;

constexpr const char kCacheHeader[] = "gale-analyze-cache v1";

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    if (s[i] == 't') {
      out.push_back('\t');
    } else if (s[i] == 'n') {
      out.push_back('\n');
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

struct CacheEntry {
  uint64_t size = 0;
  int64_t mtime = 0;
  uint64_t hash = 0;
  std::string sibling;       // rel path of the paired header, or ""
  uint64_t sibling_hash = 0;
  FileFacts facts;
};

using CacheMap = std::map<std::string, CacheEntry>;

// Parses entry lines; a malformed numeric field throws (stoull family).
void ParseCacheLines(std::istream& in, CacheMap& cache) {
  CacheEntry* current = nullptr;
  std::string line;
  while (std::getline(in, line)) {
    const std::vector<std::string> f = SplitTabs(line);
    if (f.empty()) continue;
    if (f[0] == "F" && f.size() == 7) {
      CacheEntry entry;
      entry.size = std::stoull(f[2]);
      entry.mtime = std::stoll(f[3]);
      entry.hash = std::stoull(f[4]);
      entry.sibling = f[5] == "-" ? "" : f[5];
      entry.sibling_hash = std::stoull(f[6]);
      current = &cache.emplace(f[1], std::move(entry)).first->second;
    } else if (f[0] == "I" && f.size() == 5 && current != nullptr) {
      IncludeDirective inc;
      inc.line = std::stoi(f[1]);
      inc.angled = f[2] == "1";
      inc.target = Unescape(f[3]);
      current->facts.includes.push_back(inc);
      std::set<std::string> allows;
      if (f[4] != "-") {
        std::istringstream split(f[4]);
        std::string rule;
        while (std::getline(split, rule, ',')) {
          if (!rule.empty()) allows.insert(rule);
        }
      }
      current->facts.include_allows.push_back(std::move(allows));
    } else if (f[0] == "D" && f.size() == 4 && current != nullptr) {
      current->facts.findings.push_back(
          {"", std::stoi(f[1]), f[2], Unescape(f[3])});
    }
  }
}

CacheMap LoadCache(const std::string& path) {
  CacheMap cache;
  std::ifstream in(path);
  if (!in) return cache;
  std::string line;
  if (!std::getline(in, line) || line != kCacheHeader) return cache;
  // Any corruption (truncated write, manual edit) discards the whole
  // cache and the scan runs cold — never a wrong reuse.
  try {
    ParseCacheLines(in, cache);
  } catch (const std::exception&) {
    return CacheMap{};
  }
  // Finding file fields are implied by the entry key; restore them.
  for (auto& [rel, entry] : cache) {
    for (Finding& finding : entry.facts.findings) finding.file = rel;
  }
  return cache;
}

void SaveCache(const std::string& path, const std::vector<std::string>& rels,
               const std::vector<CacheEntry>& entries) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;  // unwritable cache degrades to a cold scan next run
  out << kCacheHeader << "\n";
  for (size_t i = 0; i < rels.size(); ++i) {
    const CacheEntry& e = entries[i];
    out << "F\t" << rels[i] << "\t" << e.size << "\t" << e.mtime << "\t"
        << e.hash << "\t" << (e.sibling.empty() ? "-" : e.sibling) << "\t"
        << e.sibling_hash << "\n";
    for (size_t k = 0; k < e.facts.includes.size(); ++k) {
      const IncludeDirective& inc = e.facts.includes[k];
      std::string allows = "-";
      if (k < e.facts.include_allows.size() &&
          !e.facts.include_allows[k].empty()) {
        allows.clear();
        for (const std::string& rule : e.facts.include_allows[k]) {
          if (!allows.empty()) allows += ",";
          allows += rule;
        }
      }
      out << "I\t" << inc.line << "\t" << (inc.angled ? 1 : 0) << "\t"
          << Escape(inc.target) << "\t" << allows << "\n";
    }
    for (const Finding& finding : e.facts.findings) {
      out << "D\t" << finding.line << "\t" << finding.rule << "\t"
          << Escape(finding.message) << "\n";
    }
  }
}

std::string ReadFileOrEmpty(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool HasScannedExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

// Per-file working state for the parallel phases. Each shard touches only
// its own index range, so all writes are disjoint.
struct FileState {
  fs::path abs;
  std::string rel;
  uint64_t size = 0;
  int64_t mtime = 0;
  uint64_t hash = 0;
  bool content_read = false;
  std::string content;
  size_t sibling = kNone;  // index of the paired .h, or kNone
  bool cache_valid = false;
  bool retokenized = false;
  FileFacts facts;

  static constexpr size_t kNone = static_cast<size_t>(-1);
};

// Phase A shard kernel: establish content identity. Trust size+mtime; on
// any difference read and hash.
void IdentityShard(std::vector<FileState>* files, const CacheMap& cache,
                   size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    FileState& f = (*files)[i];
    const auto it = cache.find(f.rel);
    if (it != cache.end() && it->second.size == f.size &&
        it->second.mtime == f.mtime) {
      f.hash = it->second.hash;
      continue;
    }
    f.content = ReadFileOrEmpty(f.abs);
    f.content_read = true;
    f.hash = Fnv1a(f.content);
  }
}

// Phase B shard kernel: reuse cached facts when the content identity (own
// hash + paired-header hash) matches; otherwise tokenize and analyze.
void AnalyzeShard(std::vector<FileState>* files, const CacheMap& cache,
                  size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    FileState& f = (*files)[i];
    const uint64_t sibling_hash =
        f.sibling == FileState::kNone ? 0 : (*files)[f.sibling].hash;
    const std::string sibling_rel =
        f.sibling == FileState::kNone ? "" : (*files)[f.sibling].rel;
    const auto it = cache.find(f.rel);
    if (it != cache.end() && it->second.hash == f.hash &&
        it->second.sibling == sibling_rel &&
        it->second.sibling_hash == sibling_hash) {
      f.facts = it->second.facts;
      f.cache_valid = true;
      continue;
    }
    if (!f.content_read) {
      f.content = ReadFileOrEmpty(f.abs);
      f.content_read = true;
    }
    std::string sibling_content;
    if (f.sibling != FileState::kNone) {
      const FileState& sib = (*files)[f.sibling];
      // The sibling slot belongs to another shard; read a private copy
      // when phase A skipped it.
      sibling_content =
          sib.content_read ? sib.content : ReadFileOrEmpty(sib.abs);
    }
    f.facts = AnalyzeFileContent(f.rel, f.content, sibling_content);
    f.retokenized = true;
  }
}

std::vector<Finding> FilterAndSort(std::vector<Finding> findings,
                                   const std::set<std::string>& only_rules) {
  if (!only_rules.empty()) {
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) {
                                    return only_rules.count(f.rule) == 0;
                                  }),
                   findings.end());
  }
  std::sort(findings.begin(), findings.end());
  return findings;
}

}  // namespace

ScanResult ScanTree(const std::string& root, const ScanOptions& options) {
  static const char* kDirs[] = {"src", "tests", "bench", "tools", "examples"};
  const fs::path root_path(root);

  std::vector<FileState> files;
  for (const char* dir : kDirs) {
    const fs::path base = root_path / dir;
    std::error_code ec;
    if (!fs::exists(base, ec)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !HasScannedExtension(entry.path())) {
        continue;
      }
      FileState f;
      f.abs = entry.path();
      f.rel = fs::relative(entry.path(), root_path).generic_string();
      f.size = static_cast<uint64_t>(fs::file_size(entry.path(), ec));
      f.mtime = static_cast<int64_t>(
          fs::last_write_time(entry.path(), ec).time_since_epoch().count());
      files.push_back(std::move(f));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const FileState& a, const FileState& b) {
              return a.rel < b.rel;
            });

  std::map<std::string, size_t> index;
  for (size_t i = 0; i < files.size(); ++i) index[files[i].rel] = i;
  for (FileState& f : files) {
    const std::string ext = f.abs.extension().string();
    if (ext != ".cc" && ext != ".cpp") continue;
    fs::path header = f.abs;
    header.replace_extension(".h");
    const std::string header_rel =
        fs::relative(header, root_path).generic_string();
    const auto it = index.find(header_rel);
    if (it != index.end()) f.sibling = it->second;
  }

  const CacheMap cache = options.cache_path.empty()
                             ? CacheMap{}
                             : LoadCache(options.cache_path);

  const size_t n = files.size();
  util::ParallelForShards(0, n, 1,
                          [&](size_t, size_t begin, size_t end) {
                            IdentityShard(&files, cache, begin, end);
                          });
  util::ParallelForShards(0, n, 1,
                          [&](size_t, size_t begin, size_t end) {
                            AnalyzeShard(&files, cache, begin, end);
                          });

  ScanResult result;
  result.stats.files = n;
  std::vector<Finding> findings;
  std::vector<IncludeGraphInput> graph;
  graph.reserve(n);
  for (const FileState& f : files) {
    result.stats.retokenized += f.retokenized ? 1 : 0;
    result.stats.cache_hits += f.cache_valid ? 1 : 0;
    findings.insert(findings.end(), f.facts.findings.begin(),
                    f.facts.findings.end());
    graph.push_back({f.rel, f.facts.includes, f.facts.include_allows});
  }
  std::vector<Finding> cross = IncludeGraphPass(graph);
  findings.insert(findings.end(), cross.begin(), cross.end());

  if (!options.cache_path.empty()) {
    std::vector<std::string> rels;
    std::vector<CacheEntry> entries;
    rels.reserve(n);
    entries.reserve(n);
    for (const FileState& f : files) {
      CacheEntry e;
      e.size = f.size;
      e.mtime = f.mtime;
      e.hash = f.hash;
      e.sibling = f.sibling == FileState::kNone ? "" : files[f.sibling].rel;
      e.sibling_hash =
          f.sibling == FileState::kNone ? 0 : files[f.sibling].hash;
      e.facts = f.facts;
      rels.push_back(f.rel);
      entries.push_back(std::move(e));
    }
    SaveCache(options.cache_path, rels, entries);
  }

  result.findings = FilterAndSort(std::move(findings), options.only_rules);
  return result;
}

std::vector<Finding> AnalyzeFileSet(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < files.size(); ++i) index[files[i].first] = i;

  std::vector<Finding> findings;
  std::vector<IncludeGraphInput> graph;
  for (const auto& [path, content] : files) {
    std::string sibling_content;
    const size_t dot = path.rfind('.');
    if (dot != std::string::npos &&
        (path.substr(dot) == ".cc" || path.substr(dot) == ".cpp")) {
      const auto it = index.find(path.substr(0, dot) + ".h");
      if (it != index.end()) sibling_content = files[it->second].second;
    }
    FileFacts facts = AnalyzeFileContent(path, content, sibling_content);
    findings.insert(findings.end(), facts.findings.begin(),
                    facts.findings.end());
    graph.push_back(
        {path, std::move(facts.includes), std::move(facts.include_allows)});
  }
  std::sort(graph.begin(), graph.end(),
            [](const IncludeGraphInput& a, const IncludeGraphInput& b) {
              return a.path < b.path;
            });
  std::vector<Finding> cross = IncludeGraphPass(graph);
  findings.insert(findings.end(), cross.begin(), cross.end());
  std::sort(findings.begin(), findings.end());
  return findings;
}

}  // namespace gale::analyze
