// Tree scanner: enumeration, parallel per-file analysis, the incremental
// cache, and the cross-TU pass, glued into one deterministic pipeline.
//
// Determinism contract: ScanTree's findings are sorted by (file, line,
// rule, message) and every per-file result lands in a slot indexed by the
// sorted file order, so the report is byte-identical at any
// GALE_NUM_THREADS and for any cold/warm cache state (pinned by
// analyze_scanner_test and the check_all.sh analyze stage).
//
// Incremental cache (--cache <file>): one text file, versioned, holding
// per scanned file its (size, mtime, FNV-1a content hash), the hash of
// its paired header (a .cc's findings depend on its .h), and the full
// per-file facts (findings + include edges + per-include allow sets). On
// a warm run a file whose size+mtime match is trusted without being
// read; a file whose mtime changed but whose content hash matches is
// re-stamped without being re-tokenized. Only genuinely changed files
// (or files whose paired header changed) are re-tokenized. The cross-TU
// include-graph pass is recomputed from the cached facts on every run —
// it is a graph walk over a few hundred edge lists, not a tokenization.

#ifndef GALE_TOOLS_ANALYZE_SCANNER_H_
#define GALE_TOOLS_ANALYZE_SCANNER_H_

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/finding.h"

namespace gale::analyze {

struct ScanOptions {
  // Path of the incremental cache file; empty scans cold and writes
  // nothing.
  std::string cache_path;
  // When non-empty, only findings of these rules are reported (the scan
  // still runs every pass; the filter is at the report stage so the
  // cache stays rule-complete).
  std::set<std::string> only_rules;
};

struct ScanStats {
  size_t files = 0;        // files enumerated
  size_t retokenized = 0;  // files that went through Lex + rules
  size_t cache_hits = 0;   // files served entirely from the cache
};

struct ScanResult {
  std::vector<Finding> findings;  // sorted, deterministic
  ScanStats stats;
};

// Scans src/, tests/, bench/, tools/, examples/ under `root`.
ScanResult ScanTree(const std::string& root, const ScanOptions& options);

// In-memory variant for fixtures: runs the single-TU pass on every
// (path, content) pair — with sibling-header pairing within the set —
// plus the include-graph pass, and returns the sorted findings.
std::vector<Finding> AnalyzeFileSet(
    const std::vector<std::pair<std::string, std::string>>& files);

}  // namespace gale::analyze

#endif  // GALE_TOOLS_ANALYZE_SCANNER_H_
