#include "analyze/selftest.h"

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "analyze/finding.h"
#include "analyze/scanner.h"

namespace gale::analyze {
namespace {

struct FixtureFile {
  const char* path;
  const char* source;
};

// A fixture is a small file set run through the full single-TU +
// include-graph pipeline; `expected_count` findings of `rule` (or of any
// rule, when `rule` is empty) must come back.
struct Fixture {
  const char* name;
  std::vector<FixtureFile> files;
  const char* rule;
  int expected_count;
};

const std::vector<Fixture>& Fixtures() {
  static const std::vector<Fixture> kFixtures = {
      // -------------------------------------------------------------- rng
      {"rng-bad",
       {{"src/fake/a.cc", R"__(#include <cstdlib>
int Draw() { return std::rand(); }
)__"}},
       "rng", 1},
      {"rng-clock-seed-bad",
       {{"src/fake/a.cc", R"__(#include <ctime>
long Seed() { return time(nullptr); }
)__"}},
       "rng", 1},
      {"rng-good",
       {{"src/fake/a.cc", R"__(#include "util/rng.h"
double Draw(gale::util::Rng& rng) { return rng.Uniform(); }
)__"}},
       "rng", 0},
      {"rng-good-identifier",
       {{"src/fake/a.cc",
         R"__(int randomize_count = 0;  // 'randomize_count' is not 'random'
void TimeSince() {}              // 'time' not followed by '('
)__"}},
       "rng", 0},

      // ---------------------------------------------------- unordered-iter
      {"unordered-iter-bad",
       {{"src/fake/a.cc", R"__(#include <unordered_map>
double Sum(const std::unordered_map<int, double>& weights) {
  double acc = 0.0;
  for (const auto& [k, w] : weights) acc += w;  // order-dependent FP sum
  return acc;
}
)__"}},
       "unordered-iter", 1},
      {"unordered-iter-good-sorted",
       {{"src/fake/a.cc", R"__(#include <unordered_map>
#include <algorithm>
#include <vector>
double Sum(const std::unordered_map<int, double>& weights) {
  std::vector<std::pair<int, double>> sorted(weights.begin(), weights.end());
  std::sort(sorted.begin(), sorted.end());
  double acc = 0.0;
  for (const auto& [k, w] : sorted) acc += w;
  return acc;
}
)__"}},
       "unordered-iter", 0},
      {"unordered-iter-suppressed",
       {{"src/fake/a.cc", R"__(#include <unordered_set>
size_t Count(const std::unordered_set<int>& seen) {
  size_t n = 0;
  // gale-lint: allow(unordered-iter): count is order-independent
  for (int v : seen) n += static_cast<size_t>(v >= 0);
  return n;
}
)__"}},
       "unordered-iter", 0},

      // ----------------------------------------------------------------- io
      {"io-bad",
       {{"src/fake/a.cc", R"__(#include <iostream>
void Report(int n) { std::cout << n << "\n"; }
)__"}},
       "io", 1},
      {"io-good-logging",
       {{"src/fake/a.cc", R"__(#include "util/logging.h"
void Report(int n) { GALE_LOG(Info) << n; }
)__"}},
       "io", 0},
      {"io-good-outside-src",
       {{"tools/fake.cc", R"__(#include <iostream>
void Report(int n) { std::cout << n << "\n"; }
)__"}},
       "io", 0},

      // ---------------------------------------------------------- naked-new
      {"naked-new-bad",
       {{"src/fake/a.cc", R"__(int* Make() { return new int(7); }
)__"}},
       "naked-new", 1},
      {"naked-new-good",
       {{"src/fake/a.cc", R"__(#include <memory>
std::unique_ptr<int> Make() { return std::make_unique<int>(7); }
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
};
)__"}},
       "naked-new", 0},

      // ----------------------------------------------------- shard-noinline
      {"shard-noinline-bad",
       {{"src/fake/a.cc", R"__(#include "util/parallel.h"
void Scale(double* data, size_t n) {
  gale::util::ParallelFor(0, n, 64, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) data[i] *= 2.0;
  });
}
)__"}},
       "shard-noinline", 1},
      {"shard-noinline-good-hoisted",
       {{"src/fake/a.cc", R"__(#include "util/parallel.h"
__attribute__((noinline)) void ScaleShard(double* data, size_t b, size_t e) {
  for (size_t i = b; i < e; ++i) data[i] *= 2.0;
}
void Scale(double* data, size_t n) {
  gale::util::ParallelFor(0, n, 64, [&](size_t b, size_t e) {
    ScaleShard(data, b, e);
  });
}
)__"}},
       "shard-noinline", 0},
      {"shard-noinline-suppressed",
       {{"src/fake/a.cc", R"__(#include "util/parallel.h"
void Scale(double* data, size_t n) {
  // gale-lint: allow(shard-noinline): measured no spill; trivial body
  gale::util::ParallelFor(0, n, 64, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) data[i] *= 2.0;
  });
}
)__"}},
       "shard-noinline", 0},

      // ----------------------------------------------------- hot-path-alloc
      {"hot-path-alloc-bad",
       {{"src/fake/a.cc", R"__(#include "la/matrix.h"
void Step(const gale::la::Matrix& a, const gale::la::Matrix& b,
          gale::la::Matrix* out) {
  a.MatMulInto(b, out);                     // adopted the Into path...
  gale::la::Matrix extra = a.MatMul(b);     // ...so this allocation flags
}
)__"}},
       "hot-path-alloc", 1},
      {"hot-path-alloc-good-into-only",
       {{"src/fake/a.cc", R"__(#include "la/matrix.h"
void Step(const gale::la::Matrix& a, const gale::la::Matrix& b,
          gale::la::Matrix* out, gale::la::Matrix* out2) {
  a.MatMulInto(b, out);
  a.TransposedMatMulInto(b, out2, /*accumulate=*/true);
}
)__"}},
       "hot-path-alloc", 0},
      {"hot-path-alloc-good-not-adopted",
       {{"src/fake/a.cc", R"__(#include "la/matrix.h"
gale::la::Matrix Once(const gale::la::Matrix& a, const gale::la::Matrix& b) {
  return a.MatMul(b);  // cold path, never opted into the arena
}
)__"}},
       "hot-path-alloc", 0},
      {"hot-path-alloc-suppressed",
       {{"src/fake/a.cc", R"__(#include "la/matrix.h"
#include "la/workspace.h"
void Step(const gale::la::Matrix& a, const gale::la::Matrix& b,
          gale::la::Workspace* ws) {
  // gale-lint: allow(hot-path-alloc): one-time setup, not per-step
  gale::la::Matrix init = a.MatMul(b);
}
)__"}},
       "hot-path-alloc", 0},
      {"hot-path-alloc-good-outside-src",
       {{"tools/fake.cc", R"__(#include "la/matrix.h"
void Bench(const gale::la::Matrix& a, gale::la::Matrix* out) {
  a.MatMulInto(a, out);
  gale::la::Matrix copy = a.MatMul(a);  // tools may allocate freely
}
)__"}},
       "hot-path-alloc", 0},
      {"hot-path-alloc-good-la-exempt",
       {{"src/la/fake.cc", R"__(#include "la/matrix.h"
void Wrapper(const gale::la::Matrix& a, gale::la::Matrix* out) {
  a.MatMulInto(a, out);
  gale::la::Matrix copy = a.MatMul(a);  // la defines the wrappers
}
)__"}},
       "hot-path-alloc", 0},

      // ------------------------------------------------ allow scope (PR 7)
      // A standalone allow covers the whole multi-line statement that
      // begins on the next line — not just the next line.
      {"allow-scope-multiline-statement",
       {{"src/fake/a.cc", R"__(#include "la/matrix.h"
void Step(const gale::la::Matrix& a, gale::la::Matrix* out) {
  a.MatMulInto(a, out);
  // gale-lint: allow(hot-path-alloc): one-time init, spans lines
  gale::la::Matrix extra =
      a.MatMul(
          a);
}
)__"}},
       "hot-path-alloc", 0},
      // A trailing allow covers its own line and the next line only; a
      // statement two lines below still flags.
      {"allow-scope-trailing-not-extended",
       {{"src/fake/a.cc", R"__(#include "la/matrix.h"
void Step(const gale::la::Matrix& a, gale::la::Matrix* out) {
  a.MatMulInto(a, out);  // gale-lint: allow(hot-path-alloc): wrong line
  int unrelated = 0;
  gale::la::Matrix extra = a.MatMul(a);
}
)__"}},
       "hot-path-alloc", 1},
      // The statement extension stops at the statement's end: the next
      // statement after the covered one still flags.
      {"allow-scope-stops-after-statement",
       {{"src/fake/a.cc", R"__(#include "la/matrix.h"
void Step(const gale::la::Matrix& a, gale::la::Matrix* out) {
  a.MatMulInto(a, out);
  // gale-lint: allow(hot-path-alloc): covers the next statement only
  gale::la::Matrix first =
      a.MatMul(a);
  gale::la::Matrix second = a.MatMul(a);
}
)__"}},
       "hot-path-alloc", 1},

      // ---------------------------------------------------- simd-intrinsics
      {"simd-intrinsics-bad-include",
       {{"src/fake/a.cc", R"__(#include <immintrin.h>
void Nothing() {}
)__"}},
       "simd-intrinsics", 1},
      {"simd-intrinsics-bad-usage",
       {{"src/nn/fake.cc",
         R"__(void Sum2(double* out, const double* a, const double* b) {
  __m128d va = _mm_loadu_pd(a);
  __m128d vb = _mm_loadu_pd(b);
  _mm_storeu_pd(out, _mm_add_pd(va, vb));
}
)__"}},
       "simd-intrinsics", 6},
      {"simd-intrinsics-bad-outside-src",
       {{"bench/fake.cc", R"__(#include <immintrin.h>
void Nothing() {}
)__"}},
       "simd-intrinsics", 1},
      {"simd-intrinsics-good-home",
       {{"src/la/simd.h", R"__(#include <immintrin.h>
void Add2(double* out, const double* a, const double* b) {
  _mm_storeu_pd(out, _mm_add_pd(_mm_loadu_pd(a), _mm_loadu_pd(b)));
}
)__"}},
       "simd-intrinsics", 0},
      {"simd-intrinsics-good-wrapper",
       {{"src/nn/fake.cc", R"__(#include "la/simd.h"
void Add(double* out, const double* a, const double* b, size_t n) {
  gale::la::simd::Add(out, a, b, n);
}
)__"}},
       "simd-intrinsics", 0},
      {"simd-intrinsics-suppressed",
       {{"src/fake/a.cc",
         R"__(// gale-lint: allow(simd-intrinsics): compat shim names the type
using m128_alias = __m128d;
)__"}},
       "simd-intrinsics", 0},

      // ------------------------------------------------- annotation hygiene
      {"allow-reason-bad",
       {{"src/fake/a.cc", R"__(// gale-lint: allow(io)
void Nothing() {}
)__"}},
       "allow-reason", 1},
      {"allow-unknown-rule-bad",
       {{"src/fake/a.cc",
         R"__(// gale-lint: allow(hot-path-aloc): typo'd rule id
void Nothing() {}
)__"}},
       "allow-unknown-rule", 1},
      {"allow-unknown-rule-good",
       {{"src/fake/a.cc",
         R"__(// gale-lint: allow(hot-path-alloc): correctly spelled
void Nothing() {}
)__"}},
       "allow-unknown-rule", 0},
      // Prose that quotes the marker mid-sentence is documentation, not
      // an annotation: only a comment BEGINNING with `gale-lint:` parses.
      {"allow-marker-midsentence-ignored",
       {{"src/fake/a.cc",
         R"__(// Suppressions are written `gale-lint: allow(some-rule): why`.
void Nothing() {}
)__"}},
       "allow-unknown-rule", 0},

      // --------------------------------------------------- raw-chrono-timing
      {"raw-chrono-bad",
       {{"src/fake/a.cc", R"__(#include <chrono>
double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
)__"}},
       "raw-chrono-timing", 1},
      {"raw-chrono-good-obs",
       {{"src/obs/fake.cc", R"__(#include <chrono>
auto Now() { return std::chrono::steady_clock::now(); }
)__"}},
       "raw-chrono-timing", 0},
      {"raw-chrono-good-harness",
       {{"bench/fake.cc", R"__(#include <chrono>
auto Now() { return std::chrono::high_resolution_clock::now(); }
)__"}},
       "raw-chrono-timing", 0},
      {"raw-chrono-suppressed",
       {{"src/fake/a.cc", R"__(#include <chrono>
// gale-lint: allow(raw-chrono-timing): boot-time log stamp, not telemetry
auto Now() { return std::chrono::system_clock::now(); }
)__"}},
       "raw-chrono-timing", 0},

      // ------------------------------------------------------ float-compare
      {"float-compare-bad-literal",
       {{"src/fake/a.cc", R"__(bool Disabled(double rate) {
  return rate == 0.0;
}
)__"}},
       "float-compare", 1},
      {"float-compare-bad-vars",
       {{"src/fake/a.cc", R"__(bool Same(double a, double b) {
  return a != b;
}
)__"}},
       "float-compare", 1},
      {"float-compare-bad-member-via-header",
       {{"src/fake/b.h", R"__(class Gate {
 public:
  bool Open() const;
 private:
  double level_;
  double threshold_;
};
)__"},
        {"src/fake/b.cc", R"__(#include "fake/b.h"
bool Gate::Open() const { return level_ == threshold_; }
)__"}},
       "float-compare", 1},
      {"float-compare-good-tolerance",
       {{"src/fake/a.cc", R"__(#include <cmath>
bool Near(double a, double b) {
  return std::abs(a - b) < 1e-12;
}
)__"}},
       "float-compare", 0},
      {"float-compare-good-int",
       {{"src/fake/a.cc", R"__(bool Same(int a, int b, size_t n) {
  return a == b && n != 0;
}
)__"}},
       "float-compare", 0},
      {"float-compare-good-pointer",
       {{"src/fake/a.cc", R"__(bool Has(const double* data) {
  return data != nullptr;
}
)__"}},
       "float-compare", 0},
      {"float-compare-good-outside-src",
       {{"tests/fake_test.cc", R"__(bool ExactlyZero(double x) {
  return x == 0.0;  // tests may pin exact bit patterns
}
)__"}},
       "float-compare", 0},
      {"float-compare-suppressed",
       {{"src/fake/a.cc",
         R"__(bool BitwiseEqual(double a, double b) {
  // gale-lint: allow(float-compare): bitwise reproducibility check is exact
  return a == b;
}
)__"}},
       "float-compare", 0},

      // ------------------------------------------------------ nondet-reduce
      {"nondet-reduce-bad-accumulate",
       {{"src/fake/a.cc", R"__(#include <numeric>
#include <vector>
double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}
)__"}},
       "nondet-reduce", 1},
      {"nondet-reduce-bad-reduce",
       {{"src/fake/a.cc", R"__(#include <numeric>
#include <vector>
double Sum(const std::vector<double>& v) {
  return std::reduce(v.begin(), v.end());
}
)__"}},
       "nondet-reduce", 1},
      {"nondet-reduce-good-la",
       {{"src/la/fake.cc", R"__(#include <numeric>
#include <vector>
double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}
)__"}},
       "nondet-reduce", 0},
      {"nondet-reduce-good-member",
       {{"src/fake/a.cc", R"__(struct Stats {
  void accumulate(int x);
};
void Feed(Stats& s) { s.accumulate(1); }
)__"}},
       "nondet-reduce", 0},
      {"nondet-reduce-good-harness",
       {{"tests/fake_test.cc", R"__(#include <numeric>
#include <vector>
double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}
)__"}},
       "nondet-reduce", 0},
      {"nondet-reduce-suppressed",
       {{"src/fake/a.cc", R"__(#include <numeric>
#include <vector>
long Sum(const std::vector<long>& v) {
  // gale-lint: allow(nondet-reduce): integer sum, order-insensitive
  return std::accumulate(v.begin(), v.end(), 0L);
}
)__"}},
       "nondet-reduce", 0},

      // ----------------------------------------------------------- env-read
      {"env-read-bad",
       {{"src/fake/a.cc", R"__(#include <cstdlib>
const char* Mode() { return std::getenv("GALE_MODE"); }
)__"}},
       "env-read", 1},
      {"env-read-good-util",
       {{"src/util/fake.cc", R"__(#include <cstdlib>
const char* Mode() { return std::getenv("GALE_MODE"); }
)__"}},
       "env-read", 0},
      {"env-read-good-obs",
       {{"src/obs/fake.cc", R"__(#include <cstdlib>
const char* Mode() { return std::getenv("GALE_TRACE_DIR"); }
)__"}},
       "env-read", 0},
      {"env-read-good-harness",
       {{"bench/fake.cc", R"__(#include <cstdlib>
const char* Mode() { return std::getenv("GALE_BENCH_SCALE"); }
)__"}},
       "env-read", 0},
      {"env-read-suppressed",
       {{"src/fake/a.cc", R"__(#include <cstdlib>
// gale-lint: allow(env-read): one-time ISA pin, affects dispatch only
const char* Isa() { return std::getenv("GALE_SIMD_ISA"); }
)__"}},
       "env-read", 0},

      // ---------------------------------------------------- include-layering
      {"include-layering-bad-upward",
       {{"src/la/x.h", R"__(#include "nn/layer.h"
)__"},
        {"src/nn/layer.h", R"__(struct Layer {};
)__"}},
       "include-layering", 1},
      {"include-layering-bad-same-level",
       {{"src/nn/x.h", R"__(#include "graph/g.h"
)__"},
        {"src/graph/g.h", R"__(struct G {};
)__"}},
       "include-layering", 1},
      {"include-layering-good-downward",
       {{"src/core/x.h", R"__(#include "prop/y.h"
#include "util/logging.h"
)__"},
        {"src/prop/y.h", R"__(struct Y {};
)__"},
        {"src/util/logging.h", R"__(struct Log {};
)__"}},
       "include-layering", 0},
      {"include-layering-good-obs-below-la",
       {{"src/la/kmeans.cc", R"__(#include "obs/trace.h"
)__"},
        {"src/obs/trace.h", R"__(struct Span {};
)__"}},
       "include-layering", 0},
      {"include-layering-good-harness",
       {{"tools/fake.cc", R"__(#include "eval/experiment.h"
)__"},
        {"src/eval/experiment.h", R"__(struct E {};
)__"}},
       "include-layering", 0},
      {"include-layering-bad-serve-into-eval",
       {{"src/serve/x.cc", R"__(#include "eval/experiment.h"
)__"},
        {"src/eval/experiment.h", R"__(struct E {};
)__"}},
       "include-layering", 1},
      {"include-layering-bad-serve-into-baselines",
       {{"src/serve/x.cc", R"__(#include "baselines/b.h"
)__"},
        {"src/baselines/b.h", R"__(struct B {};
)__"}},
       "include-layering", 1},
      {"include-layering-good-serve-uses-core",
       {{"src/serve/x.cc", R"__(#include "core/gale.h"
#include "prop/y.h"
)__"},
        {"src/core/gale.h", R"__(struct Gale {};
)__"},
        {"src/prop/y.h", R"__(struct Y {};
)__"}},
       "include-layering", 0},
      {"include-layering-good-store-uses-serve",
       {{"src/store/store.cc", R"__(#include "serve/snapshot.h"
#include "graph/attributed_graph.h"
)__"},
        {"src/serve/snapshot.h", R"__(struct Snap {};
)__"},
        {"src/graph/attributed_graph.h", R"__(struct G {};
)__"}},
       "include-layering", 0},
      {"include-layering-bad-serve-into-store",
       {{"src/serve/x.cc", R"__(#include "store/delta_log.h"
)__"},
        {"src/store/delta_log.h", R"__(struct D {};
)__"}},
       "include-layering", 1},
      {"include-layering-bad-store-into-eval",
       {{"src/store/x.cc", R"__(#include "eval/experiment.h"
)__"},
        {"src/eval/experiment.h", R"__(struct E {};
)__"}},
       "include-layering", 1},
      {"include-layering-suppressed",
       {{"src/la/x.h",
         R"__(// gale-lint: allow(include-layering): transitional, tracked in ROADMAP
#include "nn/layer.h"
)__"},
        {"src/nn/layer.h", R"__(struct Layer {};
)__"}},
       "include-layering", 0},

      // ------------------------------------------------------ harness-include
      {"harness-include-bad",
       {{"src/eval/x.cc", R"__(#include "bench/bench_common.h"
)__"},
        {"bench/bench_common.h", R"__(struct B {};
)__"}},
       "harness-include", 1},
      {"harness-include-good-tests-use-src",
       {{"tests/x_test.cc", R"__(#include "util/rng.h"
#include "gradient_check.h"
)__"},
        {"tests/gradient_check.h", R"__(struct GC {};
)__"},
        {"src/util/rng.h", R"__(struct Rng {};
)__"}},
       "harness-include", 0},

      // --------------------------------------------------------- simd-include
      {"simd-include-bad",
       {{"src/nn/x.cc", R"__(#include "la/simd.h"
)__"},
        {"src/la/simd.h", R"__(struct Simd {};
)__"}},
       "simd-include", 1},
      {"simd-include-good-from-la",
       {{"src/la/matrix.cc", R"__(#include "la/simd.h"
)__"},
        {"src/la/simd.h", R"__(struct Simd {};
)__"}},
       "simd-include", 0},
      {"simd-include-good-harness",
       {{"bench/x.cc", R"__(#include "la/simd.h"
)__"},
        {"src/la/simd.h", R"__(struct Simd {};
)__"}},
       "simd-include", 0},
      {"simd-include-suppressed",
       {{"src/nn/x.cc",
         R"__(// gale-lint: allow(simd-include): fused lane-level Adam kernel
#include "la/simd.h"
)__"},
        {"src/la/simd.h", R"__(struct Simd {};
)__"}},
       "simd-include", 0},

      // -------------------------------------------------------- include-cycle
      {"include-cycle-bad",
       {{"src/util/a.h", R"__(#include "util/b.h"
)__"},
        {"src/util/b.h", R"__(#include "util/a.h"
)__"}},
       "include-cycle", 1},
      {"include-cycle-good-chain",
       {{"src/util/a.h", R"__(#include "util/b.h"
)__"},
        {"src/util/b.h", R"__(#include "util/c.h"
)__"},
        {"src/util/c.h", R"__(struct C {};
)__"}},
       "include-cycle", 0},

      // ------------------------------------------------------- lexer hygiene
      {"comment-and-string-blanking",
       {{"src/fake/a.cc",
         R"__(// std::rand() in a comment is fine; so is new in prose.
const char* kDoc = "call std::rand() and malloc() and printf()";
)__"}},
       "", 0},
      {"raw-string-blanking",
       {{"src/fake/a.cc",
         R"__(const char* kFixture = R"x(std::rand(); new int; getenv("X");)x";
int n = 1'000'000;  // digit separators lex as one number
)__"}},
       "", 0},
  };
  return kFixtures;
}

}  // namespace

int RunSelfTest(std::ostream& out, const char* tool_name) {
  int failures = 0;
  for (const Fixture& fx : Fixtures()) {
    std::vector<std::pair<std::string, std::string>> files;
    files.reserve(fx.files.size());
    for (const FixtureFile& f : fx.files) files.push_back({f.path, f.source});
    const std::vector<Finding> findings = AnalyzeFileSet(files);
    int count = 0;
    for (const Finding& f : findings) {
      if (std::string(fx.rule).empty() || f.rule == fx.rule) ++count;
    }
    const bool pass = count == fx.expected_count;
    if (!pass) {
      ++failures;
      out << "FAIL " << fx.name << ": expected " << fx.expected_count
          << " finding(s) of [" << (fx.rule[0] != '\0' ? fx.rule : "any")
          << "], got " << count << "\n";
      for (const Finding& f : findings) {
        out << "    " << f.file << ":" << f.line << ": [" << f.rule << "] "
            << f.message << "\n";
      }
    } else {
      out << "ok   " << fx.name << "\n";
    }
  }
  out << tool_name << " self-test: " << Fixtures().size() << " fixtures, "
      << failures << " failure(s)\n";
  return failures;
}

}  // namespace gale::analyze
