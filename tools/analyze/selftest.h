// Embedded self-test: for every rule a known-bad fixture (must trigger
// exactly N times) and a known-good twin (must not trigger), plus
// suppression-scope and annotation-hygiene cases, plus multi-file
// fixtures for the cross-TU include-graph rules. Registered with ctest
// as gale_analyze_selftest / gale_lint_selftest.

#ifndef GALE_TOOLS_ANALYZE_SELFTEST_H_
#define GALE_TOOLS_ANALYZE_SELFTEST_H_

#include <iosfwd>

namespace gale::analyze {

// Runs every fixture, reporting to `out` with `tool_name` in the summary
// line. Returns the number of failing fixtures (0 = pass).
int RunSelfTest(std::ostream& out, const char* tool_name);

}  // namespace gale::analyze

#endif  // GALE_TOOLS_ANALYZE_SELFTEST_H_
