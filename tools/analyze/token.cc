#include "analyze/token.h"

#include <cstddef>

namespace gale::analyze {
namespace {

// Multi-character operators fused into single tokens, longest first so
// the scan is a simple prefix match.
const char* const kFusedOps[] = {"::", "==", "!=", "<=", ">=",
                                 "->", "&&", "||"};

// True when `text[i]` starts a pp-number: a digit, or '.' followed by a
// digit.
bool StartsNumber(const std::string& text, size_t i) {
  if (IsDigit(text[i])) return true;
  return text[i] == '.' && i + 1 < text.size() && IsDigit(text[i + 1]);
}

// Consumes a pp-number starting at `i`: digits, identifier chars, '.',
// digit separators ('), and signed exponents (e+/-, E+/-, p+/-, P+/-).
size_t LexNumber(const std::string& text, size_t i, std::string* out) {
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (IsIdentChar(c) || c == '.') {
      out->push_back(c);
      ++i;
      if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') && i < n &&
          (text[i] == '+' || text[i] == '-') &&
          // Hex literals use e as a digit; only treat the sign as part of
          // the number when the literal is not hexadecimal.
          out->compare(0, 2, "0x") != 0 && out->compare(0, 2, "0X") != 0) {
        out->push_back(text[i]);
        ++i;
      }
      continue;
    }
    if (c == '\'' && i + 1 < n && IsIdentChar(text[i + 1])) {
      // Digit separator: 1'000'000.
      ++i;
      continue;
    }
    break;
  }
  return i;
}

// Parses the remainder of a `#include` line starting just after the
// directive name. Returns true and fills `inc` when a header-name was
// found; `i` is advanced to the end of the header-name either way.
bool LexIncludeTarget(const std::string& text, size_t* i,
                      IncludeDirective* inc) {
  const size_t n = text.size();
  size_t j = *i;
  while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
  if (j >= n) return false;
  char close = 0;
  if (text[j] == '<') {
    close = '>';
    inc->angled = true;
  } else if (text[j] == '"') {
    close = '"';
    inc->angled = false;
  } else {
    return false;
  }
  ++j;
  std::string target;
  while (j < n && text[j] != close && text[j] != '\n') {
    target.push_back(text[j]);
    ++j;
  }
  if (j >= n || text[j] != close) return false;
  *i = j + 1;
  inc->target = target;
  return true;
}

}  // namespace

TokenFile Lex(const std::string& text) {
  TokenFile out;
  const size_t n = text.size();
  size_t i = 0;
  int line = 1;
  // True until a token or directive has been seen on the current line;
  // `#` only introduces a preprocessor directive at the start of a line.
  bool at_line_start = true;
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::string comment;
      while (i < n && text[i] != '\n') {
        comment.push_back(text[i]);
        ++i;
      }
      out.comments[line] += comment;
      continue;
    }
    // Block comment; contributes its text to every line it spans.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      std::string comment;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          out.comments[line] += comment;
          comment.clear();
          ++line;
        } else {
          comment.push_back(text[i]);
        }
        ++i;
      }
      out.comments[line] += comment;
      if (i + 1 < n) i += 2;
      continue;
    }
    // Preprocessor directive. Only #include gets special treatment (its
    // header-name never becomes tokens); other directives fall through
    // and their bodies are lexed normally, so e.g. a banned identifier
    // inside a macro definition is still seen.
    if (c == '#' && at_line_start) {
      size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      size_t word_end = j;
      while (word_end < n && IsIdentChar(text[word_end])) ++word_end;
      const std::string directive = text.substr(j, word_end - j);
      if (directive == "include" || directive == "include_next") {
        IncludeDirective inc;
        inc.line = line;
        size_t k = word_end;
        if (LexIncludeTarget(text, &k, &inc)) {
          out.includes.push_back(inc);
          i = k;
          at_line_start = false;
          continue;
        }
      }
      // Not an include: emit '#' and keep lexing.
      out.tokens.push_back({TokKind::kPunct, "#", line});
      i = i + 1;
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
        (i == 0 || !IsIdentChar(text[i - 1]))) {
      size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(' && text[j] != '\n' &&
             delim.size() <= 16) {
        delim.push_back(text[j]);
        ++j;
      }
      if (j < n && text[j] == '(') {
        const std::string closer = ")" + delim + "\"";
        const size_t end = text.find(closer, j + 1);
        const size_t stop = end == std::string::npos ? n : end + closer.size();
        for (size_t k = i; k < stop; ++k) {
          if (text[k] == '\n') ++line;
        }
        i = stop;
        continue;
      }
      // Malformed raw string: fall through and lex 'R' as an identifier.
    }
    // Number before char-literal so digit separators never look like the
    // start of a '...' literal.
    if (StartsNumber(text, i)) {
      std::string num;
      i = LexNumber(text, i, &num);
      out.tokens.push_back({TokKind::kNumber, num, line});
      continue;
    }
    // String / char literal: contents are dropped entirely.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] != '\n') ++i;
        ++i;
      }
      if (i < n && text[i] == quote) ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(text[i])) ++i;
      out.tokens.push_back(
          {TokKind::kIdent, text.substr(start, i - start), line});
      continue;
    }
    // Punctuation: fuse the known multi-char operators.
    bool fused = false;
    for (const char* op : kFusedOps) {
      const size_t len = 2;
      if (i + len <= n && text.compare(i, len, op) == 0) {
        out.tokens.push_back({TokKind::kPunct, op, line});
        i += len;
        fused = true;
        break;
      }
    }
    if (fused) continue;
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace gale::analyze
