// gale::analyze tokenizer — the lexical substrate every analysis pass
// shares.
//
// Lex() turns one translation unit into
//  * a token stream of identifiers, numbers, and punctuation (comments,
//    string/char-literal contents, and #include header-names excluded, so
//    no rule can ever match prose or quoted text),
//  * a per-line comment table (the annotation layer parses
//    `gale-lint: allow(...)` out of it), and
//  * the file's #include directives with their targets, preserved
//    separately for the cross-TU include-graph pass.
//
// The lexer understands //- and /**/-comments, "..." and '...' literals
// with escapes, raw strings R"delim(...)delim", pp-numbers (including
// digit separators and exponents, so 1'000'000 and 1e-9 are single
// tokens), and preprocessor #include lines. A small set of multi-char
// operators is fused into single punctuation tokens (`::`, `==`, `!=`,
// `<=`, `>=`, `->`, `&&`, `||`) because the rules reason about them as
// units; everything else is one punctuation token per character.

#ifndef GALE_TOOLS_ANALYZE_TOKEN_H_
#define GALE_TOOLS_ANALYZE_TOKEN_H_

#include <map>
#include <string>
#include <vector>

namespace gale::analyze {

enum class TokKind {
  kIdent,
  kNumber,
  kPunct,
};

struct Tok {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;
};

// One `#include` directive. `target` is the header-name as written
// (without the quotes/angle brackets); `angled` distinguishes <...> from
// "...".
struct IncludeDirective {
  std::string target;
  bool angled = false;
  int line = 0;
};

struct TokenFile {
  std::vector<Tok> tokens;
  // line -> concatenated comment text on that line (block comments
  // contribute to every line they span).
  std::map<int, std::string> comments;
  std::vector<IncludeDirective> includes;
};

TokenFile Lex(const std::string& text);

inline bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

inline bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

inline bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace gale::analyze

#endif  // GALE_TOOLS_ANALYZE_TOKEN_H_
