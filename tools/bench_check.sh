#!/usr/bin/env bash
# Benchmark-regression gate: runs the instrumented benches
# (bench_parallel_scaling, bench_micro, bench_simd_scaling,
# bench_analyze, bench_ppr_batch, bench_serve, bench_store) with
# GALE_BENCH_JSON_DIR set, then compares every (name, threads) record
# against the committed baselines in bench/baselines/. A record FAILS only if its median_ns is more than
# GALE_BENCH_TOLERANCE (default 1.00, i.e. 2x) slower than the baseline —
# generous on purpose: this catches order-of-magnitude regressions (an
# accidentally serialised kernel, an allocating hot loop), not CPU jitter;
# shared CI boxes routinely swing short benchmarks by 50%+.
# Faster-than-baseline is always fine and is reported so wins are visible.
# A benchmark that emits records with no committed baseline FAILS the gate
# (run --update to record it): every bench added to the suite must land
# with its baseline, or the gate would silently never cover it.
#
# Usage:
#   tools/bench_check.sh            run + compare against baselines
#   tools/bench_check.sh --update   run + overwrite the committed baselines
#
# Env:
#   GALE_BENCH_BUILD_DIR   build tree with the bench binaries (default: build)
#   GALE_BENCH_TOLERANCE   allowed slowdown fraction (default: 1.00)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${GALE_BENCH_BUILD_DIR:-${repo_root}/build}"
baseline_dir="${repo_root}/bench/baselines"
tolerance="${GALE_BENCH_TOLERANCE:-1.00}"
update=0
if [ "${1:-}" = "--update" ]; then
  update=1
elif [ -n "${1:-}" ]; then
  echo "bench_check: unknown argument '${1}' (only --update is accepted)" >&2
  exit 2
fi

if [ ! -d "${build_dir}" ]; then
  cmake -B "${build_dir}" -S "${repo_root}"
fi
cmake --build "${build_dir}" -j "$(nproc)" --target \
  bench_parallel_scaling bench_micro bench_simd_scaling bench_analyze \
  bench_ppr_batch bench_serve bench_store

json_dir="$(mktemp -d)"
trap 'rm -rf "${json_dir}"' EXIT

echo "bench_check: running bench_parallel_scaling"
GALE_BENCH_JSON_DIR="${json_dir}" "${build_dir}/bench/bench_parallel_scaling"
echo "bench_check: running bench_micro"
GALE_BENCH_JSON_DIR="${json_dir}" "${build_dir}/bench/bench_micro" \
  --benchmark_min_time=0.2
echo "bench_check: running bench_simd_scaling"
GALE_BENCH_JSON_DIR="${json_dir}" "${build_dir}/bench/bench_simd_scaling"
echo "bench_check: running bench_analyze"
GALE_BENCH_JSON_DIR="${json_dir}" "${build_dir}/bench/bench_analyze" \
  --repo "${repo_root}"
echo "bench_check: running bench_ppr_batch"
GALE_BENCH_JSON_DIR="${json_dir}" "${build_dir}/bench/bench_ppr_batch"
echo "bench_check: running bench_serve"
GALE_BENCH_JSON_DIR="${json_dir}" "${build_dir}/bench/bench_serve"
echo "bench_check: running bench_store"
GALE_BENCH_JSON_DIR="${json_dir}" "${build_dir}/bench/bench_store"

if [ "${update}" -eq 1 ]; then
  mkdir -p "${baseline_dir}"
  cp "${json_dir}/BENCH_parallel_scaling.json" \
     "${json_dir}/BENCH_micro.json" \
     "${json_dir}/BENCH_simd_scaling.json" \
     "${json_dir}/BENCH_analyze.json" \
     "${json_dir}/BENCH_ppr_batch.json" \
     "${json_dir}/BENCH_serve.json" \
     "${json_dir}/BENCH_store.json" "${baseline_dir}/"
  echo "bench_check: baselines updated in bench/baselines/"
  exit 0
fi

status=0

# Every emitted JSON file must have a committed baseline: a new bench
# binary that records to GALE_BENCH_JSON_DIR without a baseline would
# otherwise never be gated.
for fresh in "${json_dir}"/*.json; do
  name="$(basename "${fresh}")"
  if [ ! -f "${baseline_dir}/${name}" ]; then
    echo "bench_check: FAIL ${name} was emitted but has no committed" \
         "baseline in bench/baselines/ (run --update to record it)" >&2
    status=1
  fi
done

for name in BENCH_parallel_scaling.json BENCH_micro.json \
            BENCH_simd_scaling.json BENCH_analyze.json \
            BENCH_ppr_batch.json BENCH_serve.json BENCH_store.json; do
  baseline="${baseline_dir}/${name}"
  fresh="${json_dir}/${name}"
  if [ ! -f "${baseline}" ]; then
    echo "bench_check: missing baseline ${baseline} (run with --update)" >&2
    status=1
    continue
  fi
  python3 - "${baseline}" "${fresh}" "${tolerance}" <<'EOF' || status=1
import json, sys

baseline_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])

def load(path):
    records = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            r = json.loads(line)
            records[(r["name"], r["threads"])] = r["median_ns"]
    return records

base = load(baseline_path)
fresh = load(fresh_path)
failed = False
for key, old_ns in sorted(base.items()):
    name, threads = key
    label = f"{name} @{threads}T"
    if key not in fresh:
        print(f"  MISSING {label}: benchmark no longer emitted")
        failed = True
        continue
    new_ns = fresh[key]
    ratio = new_ns / old_ns if old_ns > 0 else float("inf")
    if ratio > 1.0 + tolerance:
        print(f"  FAIL    {label}: {new_ns:.0f} ns vs baseline "
              f"{old_ns:.0f} ns ({ratio:.2f}x, tolerance {1.0 + tolerance:.2f}x)")
        failed = True
    elif ratio < 0.8:
        print(f"  faster  {label}: {ratio:.2f}x of baseline")
for key in sorted(set(fresh) - set(base)):
    print(f"  FAIL    new benchmark {key[0]} @{key[1]}T has no baseline "
          f"(run --update to record it)")
    failed = True
sys.exit(1 if failed else 0)
EOF
  echo "bench_check: ${name} compared (tolerance +${tolerance})"
done

if [ "${status}" -ne 0 ]; then
  echo "bench_check: REGRESSION detected (or baseline missing)" >&2
  exit 1
fi
echo "bench_check: all benchmarks within tolerance"
