#!/usr/bin/env bash
# Full pre-merge gate: static analysis, a warnings-as-errors build with the
# contract layer live, and the sanitizer matrix. Usage:
#
#   tools/check_all.sh [stage...]
#
# Stages (default: all of them, in this order):
#   lint    gale_lint over the tree + its self-test
#   analyze gale_analyze: rule self-test, clean cold scan, then a
#           warm-cache rerun that must re-tokenize zero files and emit a
#           byte-identical report at 1 and 4 threads; SARIF must parse
#   werror  -Werror build with GALE_DEBUG_CHECKS=ON, full ctest suite
#   asan    AddressSanitizer build, full ctest suite
#   ubsan   UndefinedBehaviorSanitizer build (unrecoverable), full suite
#   tsan    ThreadSanitizer build, thread-pool/determinism suites at
#           several thread counts (the old tools/check_tsan.sh)
#   simdoff GALE_SIMD=OFF scalar-fallback build, full ctest suite — keeps
#           the non-vectorized path green (it is the bitwise reference
#           the SIMD kernels are checked against)
#   serve   serving-path gate: the batcher replay harness under TSan
#           (races between callers and the worker) and ASan (the
#           snapshot's binary loader on corrupt/truncated files), plus an
#           8-thread replay leg. Reuses build-tsan/build-asan, so after
#           those stages it is incremental.
#   store   versioned-store gate: the publish pipeline (apply batches,
#           incremental PPR reuse, epoch snapshots) under TSan at the
#           default/_mt4/8-thread legs, and the delta-log loader walking
#           truncated / bit-flipped logs under ASan. Reuses
#           build-tsan/build-asan like the serve stage.
#
# Opt-in stages (never run by default; name them explicitly):
#   bench   tools/bench_check.sh — benchmark-regression gate against the
#           committed bench/baselines/BENCH_*.json (timing-sensitive, so
#           it stays out of the default matrix)
#
# Each stage builds into its own tree (build-<stage>) so instrumented
# objects never mix. Roughly 10-20 minutes for the full matrix.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=(lint analyze werror asan ubsan tsan simdoff serve store)
fi
jobs="$(nproc)"

run_stage() {
  echo
  echo "=== check_all: $1 ==="
}

configure_and_test() {
  # configure_and_test <build-dir> <cmake-args...>: fresh configure, full
  # build, full suite (gale_lint and the *_mt4 entries included).
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S "${repo_root}" "$@"
  cmake --build "${build_dir}" -j "${jobs}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

for stage in "${stages[@]}"; do
  case "${stage}" in
    lint)
      run_stage "gale_lint (static analysis + self-test)"
      build_dir="${repo_root}/build-lint"
      cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
      cmake --build "${build_dir}" -j "${jobs}" --target gale_lint
      "${build_dir}/tools/gale_lint" --self-test
      "${build_dir}/tools/gale_lint" "${repo_root}"
      ;;
    analyze)
      run_stage "gale_analyze (incremental scan + include graph + SARIF)"
      build_dir="${repo_root}/build-lint"
      cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
      cmake --build "${build_dir}" -j "${jobs}" --target gale_analyze
      analyzer="${build_dir}/tools/gale_analyze"
      "${analyzer}" --self-test
      scratch="$(mktemp -d)"
      trap 'rm -rf "${scratch}"' EXIT
      # Cold scan (must be clean), then a warm rerun through the cache:
      # zero files re-tokenized, byte-identical report. A third pass at a
      # different thread count pins thread-count invariance of the output.
      "${analyzer}" --cache="${scratch}/scan.cache" "${repo_root}" \
        > "${scratch}/cold.txt" 2> "${scratch}/cold.stats"
      "${analyzer}" --cache="${scratch}/scan.cache" "${repo_root}" \
        > "${scratch}/warm.txt" 2> "${scratch}/warm.stats"
      grep -q " 0 re-tokenized," "${scratch}/warm.stats" || {
        echo "check_all: warm cache rerun re-tokenized files:" >&2
        cat "${scratch}/warm.stats" >&2
        exit 1
      }
      cmp "${scratch}/cold.txt" "${scratch}/warm.txt" || {
        echo "check_all: cold/warm reports differ" >&2
        exit 1
      }
      GALE_NUM_THREADS=1 "${analyzer}" "${repo_root}" \
        > "${scratch}/t1.txt" 2>/dev/null
      GALE_NUM_THREADS=4 "${analyzer}" "${repo_root}" \
        > "${scratch}/t4.txt" 2>/dev/null
      cmp "${scratch}/t1.txt" "${scratch}/t4.txt" || {
        echo "check_all: reports differ across thread counts" >&2
        exit 1
      }
      # SARIF output must be valid JSON.
      "${analyzer}" --format=sarif "${repo_root}" 2>/dev/null \
        | python3 -c "import json,sys; json.load(sys.stdin)"
      echo "check_all: analyze stage OK (clean tree, warm cache exact)"
      ;;
    werror)
      run_stage "-Werror build with contract checks live"
      configure_and_test "${repo_root}/build-werror" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGALE_WERROR=ON -DGALE_DEBUG_CHECKS=ON
      ;;
    asan)
      run_stage "AddressSanitizer"
      configure_and_test "${repo_root}/build-asan" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGALE_SANITIZE=address -DGALE_DEBUG_CHECKS=ON
      ;;
    ubsan)
      run_stage "UndefinedBehaviorSanitizer"
      configure_and_test "${repo_root}/build-ubsan" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGALE_SANITIZE=undefined -DGALE_DEBUG_CHECKS=ON
      ;;
    tsan)
      run_stage "ThreadSanitizer (parallel kernels)"
      build_dir="${repo_root}/build-tsan"
      cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGALE_SANITIZE=thread
      cmake --build "${build_dir}" -j "${jobs}" --target \
        util_thread_pool_test la_parallel_equivalence_test \
        la_into_equivalence_test nn_alloc_free_test \
        eval_determinism_test prop_test la_pca_kmeans_test
      # The *_mt4 ctest entries pin GALE_NUM_THREADS=4; re-run the
      # kernel-heavy suites at a wider 8 threads for extra interleavings.
      ctest --test-dir "${build_dir}" --output-on-failure \
        -R '^(util_thread_pool|la_parallel_equivalence|la_into_equivalence|nn_alloc_free|eval_determinism|prop|la_pca_kmeans)_test(_mt4)?$'
      GALE_NUM_THREADS=8 ctest --test-dir "${build_dir}" --output-on-failure \
        -R '(util_thread_pool|la_parallel_equivalence|la_into_equivalence)_test$'
      ;;
    simdoff)
      run_stage "GALE_SIMD=OFF scalar fallback"
      configure_and_test "${repo_root}/build-simdoff" \
        -DCMAKE_BUILD_TYPE=Release \
        -DGALE_SIMD=OFF -DGALE_DEBUG_CHECKS=ON
      ;;
    serve)
      run_stage "serving path (replay under TSan + ASan, corruption cases)"
      # TSan: concurrent callers vs the batcher worker. Same configure
      # flags as the tsan stage so the build tree is shared.
      build_dir="${repo_root}/build-tsan"
      cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGALE_SANITIZE=thread
      cmake --build "${build_dir}" -j "${jobs}" --target \
        serve_replay_test serve_snapshot_test
      ctest --test-dir "${build_dir}" --output-on-failure \
        -R '^serve_(replay|snapshot)_test(_mt4)?$'
      # Wider interleavings than the pinned _mt4 leg.
      GALE_NUM_THREADS=8 GALE_OBS_LOGICAL_TIME=1 \
        ctest --test-dir "${build_dir}" --output-on-failure \
        -R '^serve_replay_test$'
      # ASan: the snapshot loader walking truncated / bit-flipped files
      # must never read out of bounds. Same flags as the asan stage.
      build_dir="${repo_root}/build-asan"
      cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGALE_SANITIZE=address -DGALE_DEBUG_CHECKS=ON
      cmake --build "${build_dir}" -j "${jobs}" --target \
        serve_replay_test serve_snapshot_test
      ctest --test-dir "${build_dir}" --output-on-failure \
        -R '^serve_(replay|snapshot)_test(_mt4)?$'
      ;;
    store)
      run_stage "versioned store (publish pipeline under TSan + ASan)"
      # TSan: the publish path runs feature encode + batched PPR on the
      # pool; the bitwise incremental-vs-scratch contract must hold with
      # races instrumented. Shares build-tsan with the tsan/serve stages.
      build_dir="${repo_root}/build-tsan"
      cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGALE_SANITIZE=thread
      cmake --build "${build_dir}" -j "${jobs}" --target \
        store_publish_test store_delta_log_test
      ctest --test-dir "${build_dir}" --output-on-failure \
        -R '^store_(publish|delta_log)_test(_mt4)?$'
      # Wider interleavings than the pinned _mt4 leg.
      GALE_NUM_THREADS=8 GALE_OBS_LOGICAL_TIME=1 \
        ctest --test-dir "${build_dir}" --output-on-failure \
        -R '^store_publish_test$'
      # ASan: the delta-log reader walking truncated / bit-flipped /
      # version-skewed logs must never read out of bounds.
      build_dir="${repo_root}/build-asan"
      cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DGALE_SANITIZE=address -DGALE_DEBUG_CHECKS=ON
      cmake --build "${build_dir}" -j "${jobs}" --target \
        store_publish_test store_delta_log_test
      ctest --test-dir "${build_dir}" --output-on-failure \
        -R '^store_(publish|delta_log)_test(_mt4)?$'
      ;;
    bench)
      run_stage "benchmark-regression gate (opt-in)"
      GALE_BENCH_BUILD_DIR="${repo_root}/build-bench" \
        "${repo_root}/tools/bench_check.sh"
      ;;
    *)
      echo "check_all: unknown stage '${stage}'" >&2
      echo "stages: lint analyze werror asan ubsan tsan simdoff serve" \
           "store bench" >&2
      exit 2
      ;;
  esac
done

echo
echo "check_all: all stages passed (${stages[*]})"
