#!/usr/bin/env bash
# Race-checks the parallel kernels: builds with GALE_SANITIZE=thread and
# runs the thread-pool and determinism suites pinned to several threads so
# TSan actually sees concurrent shards. Usage:
#
#   tools/check_tsan.sh [build-dir]
#
# The build directory defaults to build-tsan (kept separate from the
# regular build tree so the instrumented objects never mix with it).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGALE_SANITIZE=thread
cmake --build "${build_dir}" -j "$(nproc)" --target \
  util_thread_pool_test la_parallel_equivalence_test eval_determinism_test \
  prop_test la_pca_kmeans_test

# The *_mt4 ctest entries pin GALE_NUM_THREADS=4; run them plus the plain
# suites at a wider 8 threads for extra interleavings.
ctest --test-dir "${build_dir}" --output-on-failure \
  -R '^(util_thread_pool|la_parallel_equivalence|eval_determinism|prop|la_pca_kmeans)_test(_mt4)?$'
GALE_NUM_THREADS=8 ctest --test-dir "${build_dir}" --output-on-failure \
  -R '(util_thread_pool|la_parallel_equivalence)_test$'

echo "TSan check passed."
