// gale_cli — command-line front end for the GALE library.
//
// Subcommands:
//   generate --out g.graph [--nodes N] [--edges M] [--seed S]
//       Generate a clean synthetic attributed graph and save it.
//   pollute --in g.graph --out dirty.graph --truth t.truth
//            [--error-rate R] [--detectable D] [--seed S]
//       Mine constraints, inject errors, save the dirty graph + truth.
//   detect --in dirty.graph [--truth t.truth] [--budget K] [--k k]
//          [--strategy gale|random|entropy|kmeans] [--seed S]
//          [--repair out.graph]
//       Run the full GALE loop (ground-truth oracle when --truth is given,
//       detector-ensemble oracle otherwise), print flagged nodes and
//       metrics, optionally repair and save.
//
// Example:
//   gale_cli generate --out /tmp/g.graph --nodes 1500
//   gale_cli pollute --in /tmp/g.graph --out /tmp/d.graph
//       --truth /tmp/d.truth
//   gale_cli detect --in /tmp/d.graph --truth /tmp/d.truth --budget 50

#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "core/augment.h"
#include "core/gale.h"
#include "core/repair.h"
#include "detect/oracle.h"
#include "eval/metrics.h"
#include "graph/constraints.h"
#include "graph/error_injector.h"
#include "graph/graph_io.h"
#include "graph/synthetic_dataset.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

using namespace gale;

// Minimal --flag value parser; flags without values are not used here.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::cerr << "expected --flag, got '" << key << "'\n";
        std::exit(2);
      }
      values_[key.substr(2)] = argv[i + 1];
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : static_cast<uint64_t>(std::atoll(it->second.c_str()));
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

std::vector<graph::Constraint> MineConstraints(
    const graph::AttributedGraph& g) {
  graph::ConstraintMiner miner(
      {.min_support = std::max<size_t>(8, g.num_nodes() / 200),
       .min_confidence = 0.8});
  auto constraints = miner.Mine(g);
  GALE_CHECK(constraints.ok()) << constraints.status();
  return std::move(constraints).value();
}

int CmdGenerate(const Flags& flags) {
  graph::SyntheticConfig config;
  config.num_nodes = flags.GetInt("nodes", 1500);
  config.num_edges = flags.GetInt("edges", config.num_nodes * 6 / 5);
  config.seed = flags.GetInt("seed", 1);
  auto ds = graph::GenerateSynthetic(config);
  GALE_CHECK(ds.ok()) << ds.status();
  const std::string out = flags.Get("out", "gale.graph");
  GALE_CHECK_OK(graph::SaveGraph(ds.value().graph, out));
  std::cout << "wrote " << ds.value().graph.num_nodes() << " nodes / "
            << ds.value().graph.num_edges() << " edges to " << out << "\n";
  return 0;
}

int CmdPollute(const Flags& flags) {
  auto g = graph::LoadGraph(flags.Get("in", "gale.graph"));
  GALE_CHECK(g.ok()) << g.status();
  const std::vector<graph::Constraint> constraints =
      MineConstraints(g.value());

  graph::ErrorInjectorConfig inject;
  inject.node_error_rate = flags.GetDouble("error-rate", 0.04);
  inject.detectable_rate = flags.GetDouble("detectable", 0.5);
  inject.seed = flags.GetInt("seed", 2);
  auto truth = graph::ErrorInjector(inject).Inject(g.value(), constraints);
  GALE_CHECK(truth.ok()) << truth.status();

  const std::string out = flags.Get("out", "dirty.graph");
  GALE_CHECK_OK(graph::SaveGraph(g.value(), out));
  if (flags.Has("truth")) {
    std::ofstream truth_file(flags.Get("truth", ""));
    GALE_CHECK(truth_file.is_open());
    GALE_CHECK_OK(graph::WriteGroundTruth(truth.value(), truth_file));
  }
  std::cout << "polluted " << truth.value().NumErroneousNodes()
            << " nodes (" << truth.value().errors.size() << " values), wrote "
            << out << "\n";
  return 0;
}

core::QueryStrategy ParseStrategy(const std::string& name) {
  if (name == "random") return core::QueryStrategy::kRandom;
  if (name == "entropy") return core::QueryStrategy::kEntropy;
  if (name == "kmeans") return core::QueryStrategy::kKmeans;
  if (name == "gale") return core::QueryStrategy::kGale;
  std::cerr << "unknown strategy '" << name << "'\n";
  std::exit(2);
}

int CmdDetect(const Flags& flags) {
  auto g = graph::LoadGraph(flags.Get("in", "dirty.graph"));
  GALE_CHECK(g.ok()) << g.status();
  const std::vector<graph::Constraint> constraints =
      MineConstraints(g.value());
  auto library = detect::DetectorLibrary::MakeDefault(constraints);
  GALE_CHECK_OK(library.RunAll(g.value()));

  auto features = core::GAugment(g.value(), constraints, {});
  GALE_CHECK(features.ok()) << features.status();

  core::GaleConfig config;
  config.local_budget = flags.GetInt("k", 10);
  const size_t budget = flags.GetInt("budget", 50);
  config.iterations = static_cast<int>(
      std::max<size_t>(1, budget / config.local_budget));
  config.selector.strategy = ParseStrategy(flags.Get("strategy", "gale"));
  config.seed = flags.GetInt("seed", 3);

  core::Gale gale(&g.value(), &library, &constraints, config);

  // Oracle: ground truth when provided, else the detector ensemble.
  graph::ErrorGroundTruth truth;
  bool have_truth = false;
  if (flags.Has("truth")) {
    std::ifstream truth_file(flags.Get("truth", ""));
    GALE_CHECK(truth_file.is_open());
    auto loaded =
        graph::ReadGroundTruth(truth_file, g.value().num_nodes());
    GALE_CHECK(loaded.ok()) << loaded.status();
    truth = std::move(loaded).value();
    have_truth = true;
  }
  detect::GroundTruthOracle truth_oracle(&truth);
  detect::EnsembleOracle ensemble_oracle(&library);
  detect::Oracle& oracle =
      have_truth ? static_cast<detect::Oracle&>(truth_oracle)
                 : static_cast<detect::Oracle&>(ensemble_oracle);

  auto result = gale.Run(features.value().x_real,
                         features.value().x_synthetic, oracle);
  GALE_CHECK(result.ok()) << result.status();

  size_t flagged = 0;
  for (int label : result.value().predicted) {
    flagged += (label == core::kLabelError);
  }
  std::cout << "flagged " << flagged << " of " << g.value().num_nodes()
            << " nodes as erroneous (" << oracle.num_queries()
            << " oracle queries, "
            << util::FormatDouble(result.value().total_seconds(), 2)
            << "s)\n";
  if (have_truth) {
    std::vector<uint8_t> flags_vec(g.value().num_nodes(), 0);
    for (size_t v = 0; v < flags_vec.size(); ++v) {
      flags_vec[v] =
          result.value().predicted[v] == core::kLabelError ? 1 : 0;
    }
    std::cout << "vs ground truth: "
              << eval::ComputeMetrics(flags_vec, truth.is_error).ToString()
              << "\n";
  }

  if (flags.Has("repair")) {
    core::RepairReport report = core::RepairGraph(
        g.value(), constraints, library, result.value().predicted);
    std::cout << "repaired " << report.num_applied() << " values on "
              << report.nodes_considered << " nodes\n";
    GALE_CHECK_OK(graph::SaveGraph(g.value(), flags.Get("repair", "")));
    std::cout << "wrote repaired graph to " << flags.Get("repair", "")
              << "\n";
  }
  return 0;
}

int Usage() {
  std::cerr << "usage: gale_cli <generate|pollute|detect> [--flag value]...\n"
            << "see the header comment of tools/gale_cli.cc\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "pollute") return CmdPollute(flags);
  if (command == "detect") return CmdDetect(flags);
  return Usage();
}
