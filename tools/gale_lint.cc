// gale_lint — project-specific determinism/safety checker.
//
// GALE's headline results only reproduce when every run is bit-
// deterministic. PR 1 made the parallel kernels bitwise thread-count-
// invariant; this tool machine-checks the source-level rules that keep
// the rest of the tree that way. It runs as a ctest entry over src/,
// tests/, bench/, tools/, and examples/ and fails the build on any
// violation.
//
// Rules (ids are what allow() annotations name):
//   rng            No std::rand / random_device / <random> engines /
//                  wall-clock seeding outside src/util/rng — every
//                  stochastic component must draw from the seeded
//                  util::Rng streams.
//   unordered-iter No range-for over a std::unordered_map/unordered_set
//                  variable: hash-table iteration order is unspecified and
//                  silently leaks into results. Copy into a vector and
//                  sort, or iterate an ordered sibling structure.
//   io             No std::cout/cerr or printf-family output in library
//                  code (src/): use util/logging. Tools, benches, tests,
//                  and examples print freely.
//   naked-new      No new/delete/malloc/free: containers and smart
//                  pointers own all memory ('= delete' declarations are
//                  fine).
//   shard-noinline No loops inside a lambda passed to util::ParallelFor /
//                  ParallelForShards in src/: hoist the loop body into a
//                  noinline free function with plain-pointer arguments.
//                  With the closure pointer live, GCC spills inner-loop
//                  bounds to the stack (~15% on the SpMM bench; DESIGN.md
//                  §6).
//   raw-chrono-timing
//                  No std::chrono clock reads (steady_clock, system_clock,
//                  high_resolution_clock) in src/ outside src/obs/ — all
//                  timing flows through obs::Span / obs::Trace so it
//                  respects logical-time mode and lands in one report.
//                  Harness code (tools/, bench/, tests/, examples/) may
//                  use obs::WallTimer or raw clocks freely.
//   simd-intrinsics
//                  No vendor SIMD intrinsics (immintrin.h and friends,
//                  _mm* / __m128 / __m256 / __m512 identifiers) outside
//                  src/la/simd.h — the one home for intrinsics, where the
//                  bitwise-determinism argument (lane order, no FMA
//                  contraction) is made once. Everything else goes
//                  through the la::simd primitives.
//   hot-path-alloc No allocating kernel calls (MatMul, Multiply,
//                  SelectRows, ...) in a src/ file that already adopted
//                  the *Into out-parameter path (it mentions la::Workspace
//                  or calls some *Into kernel): once a TU is on the
//                  allocation-free training path, a stray allocating call
//                  silently reintroduces per-step allocations. Use the
//                  *Into form with a warm buffer, or justify cold-path
//                  calls with an allow. src/la/ itself is exempt (it
//                  defines the allocating wrappers).
//
// Suppression: a comment `// gale-lint: allow(<rule>): <why>` suppresses
// that rule on its own line and the next line. Every allow must carry a
// justification after the rule list; bare allows are themselves findings
// (rule 'allow-reason').
//
// The checker is lexical, not semantic: it blanks comments and string
// literals (raw strings included), then matches identifier tokens and a
// little bracket structure. That is exactly enough for the rules above to
// have no false positives on this codebase while staying dependency-free;
// known blind spots (iterator-loop unordered walks, lambdas passed through
// variables) are documented in DESIGN.md §7.
//
// Usage:
//   gale_lint <repo_root>   lint the tree rooted at <repo_root>
//   gale_lint --self-test   run the embedded known-good/known-bad fixtures

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Source model
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Token {
  std::string text;
  int line = 0;
  size_t offset = 0;  // into the cleaned source
};

// A file stripped to what the rules need: `code` is the original text with
// comments and string/char-literal contents replaced by spaces (newlines
// kept, so offsets and line numbers survive), `comments` holds the comment
// text per line (for annotations), and `tokens` the identifier stream.
struct CleanFile {
  std::string code;
  std::map<int, std::string> comments;
  std::vector<Token> tokens;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Blanks comments and literals. Handles //, /* */, "..." with escapes,
// '...' with escapes, and raw strings R"delim(...)delim" — the self-test
// fixtures below are raw strings full of banned tokens, so this must be
// exact.
CleanFile CleanSource(const std::string& text) {
  CleanFile out;
  out.code = text;
  int line = 1;
  size_t i = 0;
  const size_t n = text.size();
  auto blank = [&](size_t pos) {
    if (out.code[pos] != '\n') out.code[pos] = ' ';
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::string comment;
      while (i < n && text[i] != '\n') {
        comment.push_back(text[i]);
        blank(i);
        ++i;
      }
      out.comments[line] += comment;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::string comment;
      blank(i);
      blank(i + 1);
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          out.comments[line] += comment;
          comment.clear();
          ++line;
        } else {
          comment.push_back(text[i]);
        }
        blank(i);
        ++i;
      }
      out.comments[line] += comment;
      if (i + 1 < n) {
        blank(i);
        blank(i + 1);
        i += 2;
      }
      continue;
    }
    // Raw string literal: R"delim( ... )delim". Must be checked before the
    // plain-string case and only when R directly abuts the quote.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
        (i == 0 || !IsIdentChar(text[i - 1]))) {
      size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(' && text[j] != '\n' &&
             delim.size() <= 16) {
        delim.push_back(text[j]);
        ++j;
      }
      if (j < n && text[j] == '(') {
        const std::string closer = ")" + delim + "\"";
        const size_t end = text.find(closer, j + 1);
        const size_t stop = end == std::string::npos ? n : end + closer.size();
        for (size_t k = i; k < stop; ++k) {
          if (text[k] == '\n') ++line;
          blank(k);
        }
        i = stop;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      blank(i);
      ++i;
      while (i < n && text[i] != quote && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] != '\n') {
          blank(i);
          ++i;
        }
        blank(i);
        ++i;
      }
      if (i < n && text[i] == quote) {
        blank(i);
        ++i;
      }
      continue;
    }
    ++i;
  }

  // Identifier stream over the cleaned text.
  size_t pos = 0;
  int tok_line = 1;
  while (pos < out.code.size()) {
    const char ch = out.code[pos];
    if (ch == '\n') {
      ++tok_line;
      ++pos;
      continue;
    }
    if (IsIdentStart(ch)) {
      const size_t start = pos;
      while (pos < out.code.size() && IsIdentChar(out.code[pos])) ++pos;
      out.tokens.push_back(
          {out.code.substr(start, pos - start), tok_line, start});
      continue;
    }
    ++pos;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

struct Annotations {
  // line -> rules allowed on that line and the next.
  std::map<int, std::set<std::string>> allow;
  std::vector<Finding> bare_allows;  // allows with no justification
};

Annotations ParseAnnotations(const std::string& file,
                             const CleanFile& clean) {
  Annotations out;
  for (const auto& [line, comment] : clean.comments) {
    size_t at = comment.find("gale-lint:");
    if (at == std::string::npos) continue;
    at = comment.find("allow(", at);
    if (at == std::string::npos) continue;
    const size_t open = at + 5;
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) continue;
    std::string rules = comment.substr(open + 1, close - open - 1);
    std::replace(rules.begin(), rules.end(), ',', ' ');
    std::istringstream split(rules);
    std::string rule;
    while (split >> rule) out.allow[line].insert(rule);
    // Require a justification after the rule list: ": why".
    std::string tail = comment.substr(close + 1);
    const bool justified =
        tail.find_first_not_of(" \t:") != std::string::npos;
    if (!justified) {
      out.bare_allows.push_back(
          {file, line, "allow-reason",
           "gale-lint: allow() without a justification — say why after "
           "the rule list"});
    }
  }
  return out;
}

bool Suppressed(const Annotations& ann, const std::string& rule, int line) {
  for (int l : {line, line - 1}) {
    auto it = ann.allow.find(l);
    if (it != ann.allow.end() && it->second.count(rule) > 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Bracket helpers
// ---------------------------------------------------------------------------

// Index of the matching closer for the opener at `open`, or npos.
size_t MatchBracket(const std::string& code, size_t open, char open_ch,
                    char close_ch) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (code[i] == open_ch) ++depth;
    if (code[i] == close_ch) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

size_t SkipSpace(const std::string& code, size_t i) {
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i])) != 0) {
    ++i;
  }
  return i;
}

// ---------------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------------

struct FileClass {
  bool in_src = false;      // library code under src/
  bool rng_exempt = false;  // src/util/rng.* — the one home for RNG
  bool log_exempt = false;  // src/util/logging.* — the one home for stderr
  bool par_exempt = false;  // src/util/parallel.* — the dispatch substrate
  bool la_exempt = false;   // src/la/* — defines the allocating wrappers
  bool obs_exempt = false;  // src/obs/* — the one home for clock reads
  bool simd_exempt = false;  // src/la/simd.h — the one home for intrinsics
};

FileClass Classify(const std::string& rel_path) {
  FileClass fc;
  fc.in_src = rel_path.rfind("src/", 0) == 0;
  fc.rng_exempt = rel_path.rfind("src/util/rng", 0) == 0;
  fc.log_exempt = rel_path.rfind("src/util/logging", 0) == 0;
  fc.par_exempt = rel_path.rfind("src/util/parallel", 0) == 0;
  fc.la_exempt = rel_path.rfind("src/la/", 0) == 0;
  fc.obs_exempt = rel_path.rfind("src/obs/", 0) == 0;
  fc.simd_exempt = rel_path == "src/la/simd.h";
  return fc;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

const std::set<std::string>& BannedRngTokens() {
  static const std::set<std::string> kBanned = {
      "rand",        "srand",          "rand_r",
      "drand48",     "lrand48",        "random",
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand", "minstd_rand0",   "default_random_engine",
      "knuth_b",     "ranlux24",       "ranlux48",
  };
  return kBanned;
}

void CheckRng(const std::string& file, const FileClass& fc,
              const CleanFile& clean, const Annotations& ann,
              std::vector<Finding>* findings) {
  if (fc.rng_exempt) return;
  static const std::set<std::string> kClockSeeds = {"time", "clock",
                                                    "gettimeofday"};
  for (const Token& t : clean.tokens) {
    const bool banned = BannedRngTokens().count(t.text) > 0;
    const bool clock_call =
        kClockSeeds.count(t.text) > 0 &&
        SkipSpace(clean.code, t.offset + t.text.size()) < clean.code.size() &&
        clean.code[SkipSpace(clean.code, t.offset + t.text.size())] == '(';
    if (!banned && !clock_call) continue;
    if (Suppressed(ann, "rng", t.line)) continue;
    findings->push_back(
        {file, t.line, "rng",
         "'" + t.text +
             "' — unseeded/wall-clock randomness breaks bit-determinism; "
             "draw from util::Rng (src/util/rng.h) instead"});
  }
}

// Collects names declared as unordered_map/unordered_set in `clean`
// (variables, members, parameters). Template arguments may nest.
std::set<std::string> UnorderedDeclNames(const CleanFile& clean) {
  std::set<std::string> names;
  for (size_t i = 0; i < clean.tokens.size(); ++i) {
    const Token& t = clean.tokens[i];
    if (t.text != "unordered_map" && t.text != "unordered_set") continue;
    size_t pos = SkipSpace(clean.code, t.offset + t.text.size());
    if (pos >= clean.code.size() || clean.code[pos] != '<') continue;
    int depth = 0;
    while (pos < clean.code.size()) {
      if (clean.code[pos] == '<') ++depth;
      if (clean.code[pos] == '>') {
        --depth;
        if (depth == 0) break;
      }
      ++pos;
    }
    if (pos >= clean.code.size()) continue;
    pos = SkipSpace(clean.code, pos + 1);
    while (pos < clean.code.size() &&
           (clean.code[pos] == '&' || clean.code[pos] == '*')) {
      pos = SkipSpace(clean.code, pos + 1);
    }
    if (pos < clean.code.size() && IsIdentStart(clean.code[pos])) {
      size_t end = pos;
      while (end < clean.code.size() && IsIdentChar(clean.code[end])) ++end;
      names.insert(clean.code.substr(pos, end - pos));
    }
  }
  return names;
}

void CheckUnorderedIter(const std::string& file, const CleanFile& clean,
                        const std::set<std::string>& unordered_names,
                        const Annotations& ann,
                        std::vector<Finding>* findings) {
  if (unordered_names.empty()) return;
  for (size_t i = 0; i < clean.tokens.size(); ++i) {
    if (clean.tokens[i].text != "for") continue;
    const Token& t = clean.tokens[i];
    size_t open = SkipSpace(clean.code, t.offset + 3);
    if (open >= clean.code.size() || clean.code[open] != '(') continue;
    const size_t close = MatchBracket(clean.code, open, '(', ')');
    if (close == std::string::npos) continue;
    // Top-level ':' (not '::') marks a range-for; the range expression is
    // everything after it.
    size_t colon = std::string::npos;
    int depth = 0;
    for (size_t p = open; p < close; ++p) {
      const char ch = clean.code[p];
      if (ch == '(' || ch == '[' || ch == '{') ++depth;
      if (ch == ')' || ch == ']' || ch == '}') --depth;
      if (ch == ':' && depth == 1) {
        if (p + 1 < close && clean.code[p + 1] == ':') {
          ++p;
          continue;
        }
        if (p > open && clean.code[p - 1] == ':') continue;
        colon = p;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range_expr =
        clean.code.substr(colon + 1, close - colon - 1);
    size_t p = 0;
    while (p < range_expr.size()) {
      if (!IsIdentStart(range_expr[p])) {
        ++p;
        continue;
      }
      size_t end = p;
      while (end < range_expr.size() && IsIdentChar(range_expr[end])) ++end;
      const std::string ident = range_expr.substr(p, end - p);
      if (unordered_names.count(ident) > 0 &&
          !Suppressed(ann, "unordered-iter", t.line)) {
        findings->push_back(
            {file, t.line, "unordered-iter",
             "range-for over unordered container '" + ident +
                 "' — hash order is unspecified and leaks into results; "
                 "sort into a vector first (or justify with an allow)"});
        break;
      }
      p = end;
    }
  }
}

void CheckIo(const std::string& file, const FileClass& fc,
             const CleanFile& clean, const Annotations& ann,
             std::vector<Finding>* findings) {
  if (!fc.in_src || fc.log_exempt) return;
  static const std::set<std::string> kBanned = {
      "cout", "cerr", "printf", "fprintf", "puts", "fputs", "putchar"};
  for (const Token& t : clean.tokens) {
    if (kBanned.count(t.text) == 0) continue;
    if (Suppressed(ann, "io", t.line)) continue;
    findings->push_back({file, t.line, "io",
                         "'" + t.text +
                             "' in library code — route diagnostics through "
                             "util/logging (GALE_LOG / GALE_CHECK)"});
  }
}

void CheckRawChronoTiming(const std::string& file, const FileClass& fc,
                          const CleanFile& clean, const Annotations& ann,
                          std::vector<Finding>* findings) {
  if (!fc.in_src || fc.obs_exempt) return;
  static const std::set<std::string> kBanned = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  for (const Token& t : clean.tokens) {
    if (kBanned.count(t.text) == 0) continue;
    if (Suppressed(ann, "raw-chrono-timing", t.line)) continue;
    findings->push_back(
        {file, t.line, "raw-chrono-timing",
         "'" + t.text +
             "' in library code — time through obs::Span/obs::Trace "
             "(src/obs/ is the one home for raw clock reads, so "
             "logical-time mode and the run report stay complete)"});
  }
}

void CheckNakedNew(const std::string& file, const CleanFile& clean,
                   const Annotations& ann, std::vector<Finding>* findings) {
  static const std::set<std::string> kBanned = {
      "new", "delete", "malloc", "calloc", "realloc", "free", "strdup"};
  for (const Token& t : clean.tokens) {
    if (kBanned.count(t.text) == 0) continue;
    if (t.text == "delete") {
      // '= delete' declarations are idiomatic and allowed.
      size_t prev = t.offset;
      while (prev > 0 && std::isspace(static_cast<unsigned char>(
                             clean.code[prev - 1])) != 0) {
        --prev;
      }
      if (prev > 0 && clean.code[prev - 1] == '=') continue;
    }
    if (Suppressed(ann, "naked-new", t.line)) continue;
    findings->push_back(
        {file, t.line, "naked-new",
         "'" + t.text +
             "' — raw allocation; use containers or std::make_unique"});
  }
}

void CheckShardNoinline(const std::string& file, const FileClass& fc,
                        const CleanFile& clean, const Annotations& ann,
                        std::vector<Finding>* findings) {
  if (!fc.in_src || fc.par_exempt) return;
  for (const Token& t : clean.tokens) {
    if (t.text != "ParallelFor" && t.text != "ParallelForShards") continue;
    const size_t open = SkipSpace(clean.code, t.offset + t.text.size());
    if (open >= clean.code.size() || clean.code[open] != '(') continue;
    const size_t close = MatchBracket(clean.code, open, '(', ')');
    if (close == std::string::npos) continue;
    // Find a lambda literal among the arguments.
    size_t lb = clean.code.find('[', open);
    if (lb == std::string::npos || lb > close) continue;  // named callable
    const size_t rb = MatchBracket(clean.code, lb, '[', ']');
    if (rb == std::string::npos) continue;
    size_t pos = SkipSpace(clean.code, rb + 1);
    if (pos < clean.code.size() && clean.code[pos] == '(') {
      const size_t pe = MatchBracket(clean.code, pos, '(', ')');
      if (pe == std::string::npos) continue;
      pos = SkipSpace(clean.code, pe + 1);
    }
    if (pos >= clean.code.size() || clean.code[pos] != '{') continue;
    const size_t body_end = MatchBracket(clean.code, pos, '{', '}');
    if (body_end == std::string::npos) continue;
    const std::string body = clean.code.substr(pos, body_end - pos);
    // Keyword scan of the body for loops.
    bool has_loop = false;
    size_t p = 0;
    while (p < body.size() && !has_loop) {
      if (!IsIdentStart(body[p])) {
        ++p;
        continue;
      }
      size_t end = p;
      while (end < body.size() && IsIdentChar(body[end])) ++end;
      const std::string word = body.substr(p, end - p);
      if ((word == "for" || word == "while") &&
          (p == 0 || !IsIdentChar(body[p - 1]))) {
        has_loop = true;
      }
      p = end;
    }
    if (!has_loop) continue;
    if (Suppressed(ann, "shard-noinline", t.line)) continue;
    findings->push_back(
        {file, t.line, "shard-noinline",
         "loop body inside a " + t.text +
             " closure — the live closure pointer costs registers "
             "(~15% on SpMM); hoist the kernel into a noinline free "
             "function with plain-pointer arguments (DESIGN.md §6)"});
  }
}

void CheckSimdIntrinsics(const std::string& file, const FileClass& fc,
                         const CleanFile& clean, const Annotations& ann,
                         std::vector<Finding>* findings) {
  if (fc.simd_exempt) return;
  // Vendor intrinsic headers by name, plus the identifier prefixes every
  // x86 intrinsic and vector type uses. Prefix matching keeps the list
  // ISA-complete (_mm_/_mm256_/_mm512_, __m128d/__m256i/...).
  static const std::set<std::string> kBannedHeaders = {
      "immintrin", "emmintrin", "xmmintrin", "pmmintrin",
      "smmintrin", "tmmintrin", "nmmintrin", "ammintrin",
      "wmmintrin", "avxintrin", "avx2intrin"};
  static const char* kBannedPrefixes[] = {"_mm", "__m128", "__m256",
                                          "__m512"};
  for (const Token& t : clean.tokens) {
    bool hit = kBannedHeaders.count(t.text) > 0;
    for (const char* prefix : kBannedPrefixes) {
      if (hit) break;
      if (t.text.rfind(prefix, 0) == 0) hit = true;
    }
    if (!hit) continue;
    if (Suppressed(ann, "simd-intrinsics", t.line)) continue;
    findings->push_back(
        {file, t.line, "simd-intrinsics",
         "'" + t.text +
             "' — vendor intrinsics live only in src/la/simd.h, where the "
             "bitwise-determinism argument is made once; call the la::simd "
             "primitives instead"});
  }
}

// True when the TU is on the allocation-free path: it names la::Workspace
// or calls an *Into kernel. Identifier check, so comments don't count.
bool AdoptedIntoPath(const CleanFile& clean) {
  for (const Token& t : clean.tokens) {
    if (t.text == "Workspace" || t.text == "BorrowedMatrix") return true;
    if (t.text.size() > 4 &&
        t.text.compare(t.text.size() - 4, 4, "Into") == 0) {
      return true;
    }
  }
  return false;
}

void CheckHotPathAlloc(const std::string& file, const FileClass& fc,
                       const CleanFile& clean, bool adopted,
                       const Annotations& ann,
                       std::vector<Finding>* findings) {
  if (!fc.in_src || fc.la_exempt || !adopted) return;
  // The allocating kernels with an *Into twin. Whole-identifier matches
  // followed by '(' — `MatMulInto` is its own token and never matches
  // `MatMul`.
  static const std::set<std::string> kAllocating = {
      "MatMul",        "TransposedMatMul", "MatMulTransposed",
      "Transposed",    "Multiply",         "MultiplyVector",
      "SelectRows",    "ColSum",           "ColMean",
  };
  for (const Token& t : clean.tokens) {
    if (kAllocating.count(t.text) == 0) continue;
    const size_t pos = SkipSpace(clean.code, t.offset + t.text.size());
    if (pos >= clean.code.size() || clean.code[pos] != '(') continue;
    if (Suppressed(ann, "hot-path-alloc", t.line)) continue;
    findings->push_back(
        {file, t.line, "hot-path-alloc",
         "allocating '" + t.text +
             "(...)' in a file already on the *Into path — every call "
             "allocates a fresh buffer; write into a warm buffer with the "
             "*Into form, or justify a cold-path call with an allow"});
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

// Lints one in-memory file. `sibling_header` supplies member declarations
// for a .cc (so range-fors over members declared in the paired .h are
// seen).
std::vector<Finding> LintContent(const std::string& rel_path,
                                 const std::string& content,
                                 const std::string& sibling_header) {
  const FileClass fc = Classify(rel_path);
  const CleanFile clean = CleanSource(content);
  const Annotations ann = ParseAnnotations(rel_path, clean);

  std::set<std::string> unordered_names = UnorderedDeclNames(clean);
  bool adopted = AdoptedIntoPath(clean);
  if (!sibling_header.empty()) {
    const CleanFile header = CleanSource(sibling_header);
    for (const std::string& name : UnorderedDeclNames(header)) {
      unordered_names.insert(name);
    }
    // A .cc whose header holds the Workspace member is on the hot path
    // even if the .cc itself never names the type.
    adopted = adopted || AdoptedIntoPath(header);
  }

  std::vector<Finding> findings = ann.bare_allows;
  CheckRng(rel_path, fc, clean, ann, &findings);
  CheckUnorderedIter(rel_path, clean, unordered_names, ann, &findings);
  CheckIo(rel_path, fc, clean, ann, &findings);
  CheckRawChronoTiming(rel_path, fc, clean, ann, &findings);
  CheckNakedNew(rel_path, clean, ann, &findings);
  CheckShardNoinline(rel_path, fc, clean, ann, &findings);
  CheckSimdIntrinsics(rel_path, fc, clean, ann, &findings);
  CheckHotPathAlloc(rel_path, fc, clean, adopted, ann, &findings);
  return findings;
}

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "gale_lint: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int LintTree(const fs::path& root) {
  static const char* kDirs[] = {"src", "tests", "bench", "tools", "examples"};
  static const char* kExts[] = {".cc", ".h", ".cpp", ".hpp"};
  std::vector<fs::path> files;
  for (const char* dir : kDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (std::find_if(std::begin(kExts), std::end(kExts),
                       [&](const char* e) { return ext == e; }) !=
          std::end(kExts)) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  size_t scanned = 0;
  for (const fs::path& path : files) {
    const std::string rel = fs::relative(path, root).generic_string();
    std::string sibling;
    if (path.extension() == ".cc" || path.extension() == ".cpp") {
      fs::path header = path;
      header.replace_extension(".h");
      if (fs::exists(header)) sibling = ReadFileOrDie(header);
    }
    const std::vector<Finding> file_findings =
        LintContent(rel, ReadFileOrDie(path), sibling);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
    ++scanned;
  }

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "gale_lint: " << scanned << " files, " << findings.size()
            << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Self-test fixtures: for every rule one known-bad snippet (must trigger
// exactly once) and one known-good twin (must not trigger), plus
// suppression and annotation-hygiene cases.
// ---------------------------------------------------------------------------

struct Fixture {
  const char* name;
  const char* path;  // decides scoping (src/ vs tools/ etc.)
  const char* source;
  const char* rule;      // rule expected
  int expected_count;    // findings of `rule` expected
};

const Fixture kFixtures[] = {
    {"rng-bad", "src/fake/a.cc",
     R"__(#include <cstdlib>
int Draw() { return std::rand(); }
)__",
     "rng", 1},
    {"rng-clock-seed-bad", "src/fake/a.cc",
     R"__(#include <ctime>
long Seed() { return time(nullptr); }
)__",
     "rng", 1},
    {"rng-good", "src/fake/a.cc",
     R"__(#include "util/rng.h"
double Draw(gale::util::Rng& rng) { return rng.Uniform(); }
)__",
     "rng", 0},
    {"rng-good-identifier", "src/fake/a.cc",
     R"__(int randomize_count = 0;  // 'randomize_count' is not 'random'
void TimeSince() {}              // 'time' not followed by '('
)__",
     "rng", 0},

    {"unordered-iter-bad", "src/fake/a.cc",
     R"__(#include <unordered_map>
double Sum(const std::unordered_map<int, double>& weights) {
  double acc = 0.0;
  for (const auto& [k, w] : weights) acc += w;  // order-dependent FP sum
  return acc;
}
)__",
     "unordered-iter", 1},
    {"unordered-iter-good-sorted", "src/fake/a.cc",
     R"__(#include <unordered_map>
#include <algorithm>
#include <vector>
double Sum(const std::unordered_map<int, double>& weights) {
  std::vector<std::pair<int, double>> sorted(weights.begin(), weights.end());
  std::sort(sorted.begin(), sorted.end());
  double acc = 0.0;
  for (const auto& [k, w] : sorted) acc += w;
  return acc;
}
)__",
     "unordered-iter", 0},
    {"unordered-iter-suppressed", "src/fake/a.cc",
     R"__(#include <unordered_set>
size_t Count(const std::unordered_set<int>& seen) {
  size_t n = 0;
  // gale-lint: allow(unordered-iter): count is order-independent
  for (int v : seen) n += static_cast<size_t>(v >= 0);
  return n;
}
)__",
     "unordered-iter", 0},

    {"io-bad", "src/fake/a.cc",
     R"__(#include <iostream>
void Report(int n) { std::cout << n << "\n"; }
)__",
     "io", 1},
    {"io-good-logging", "src/fake/a.cc",
     R"__(#include "util/logging.h"
void Report(int n) { GALE_LOG(Info) << n; }
)__",
     "io", 0},
    {"io-good-outside-src", "tools/fake.cc",
     R"__(#include <iostream>
void Report(int n) { std::cout << n << "\n"; }
)__",
     "io", 0},

    {"naked-new-bad", "src/fake/a.cc",
     R"__(int* Make() { return new int(7); }
)__",
     "naked-new", 1},
    {"naked-new-good", "src/fake/a.cc",
     R"__(#include <memory>
std::unique_ptr<int> Make() { return std::make_unique<int>(7); }
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
};
)__",
     "naked-new", 0},

    {"shard-noinline-bad", "src/fake/a.cc",
     R"__(#include "util/parallel.h"
void Scale(double* data, size_t n) {
  gale::util::ParallelFor(0, n, 64, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) data[i] *= 2.0;
  });
}
)__",
     "shard-noinline", 1},
    {"shard-noinline-good-hoisted", "src/fake/a.cc",
     R"__(#include "util/parallel.h"
__attribute__((noinline)) void ScaleShard(double* data, size_t b, size_t e) {
  for (size_t i = b; i < e; ++i) data[i] *= 2.0;
}
void Scale(double* data, size_t n) {
  gale::util::ParallelFor(0, n, 64, [&](size_t b, size_t e) {
    ScaleShard(data, b, e);
  });
}
)__",
     "shard-noinline", 0},
    {"shard-noinline-suppressed", "src/fake/a.cc",
     R"__(#include "util/parallel.h"
void Scale(double* data, size_t n) {
  // gale-lint: allow(shard-noinline): measured no spill; trivial body
  gale::util::ParallelFor(0, n, 64, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) data[i] *= 2.0;
  });
}
)__",
     "shard-noinline", 0},

    {"hot-path-alloc-bad", "src/fake/a.cc",
     R"__(#include "la/matrix.h"
void Step(const gale::la::Matrix& a, const gale::la::Matrix& b,
          gale::la::Matrix* out) {
  a.MatMulInto(b, out);                     // adopted the Into path...
  gale::la::Matrix extra = a.MatMul(b);     // ...so this allocation flags
}
)__",
     "hot-path-alloc", 1},
    {"hot-path-alloc-good-into-only", "src/fake/a.cc",
     R"__(#include "la/matrix.h"
void Step(const gale::la::Matrix& a, const gale::la::Matrix& b,
          gale::la::Matrix* out, gale::la::Matrix* out2) {
  a.MatMulInto(b, out);
  a.TransposedMatMulInto(b, out2, /*accumulate=*/true);
}
)__",
     "hot-path-alloc", 0},
    {"hot-path-alloc-good-not-adopted", "src/fake/a.cc",
     R"__(#include "la/matrix.h"
gale::la::Matrix Once(const gale::la::Matrix& a, const gale::la::Matrix& b) {
  return a.MatMul(b);  // cold path, never opted into the arena
}
)__",
     "hot-path-alloc", 0},
    {"hot-path-alloc-suppressed", "src/fake/a.cc",
     R"__(#include "la/matrix.h"
#include "la/workspace.h"
void Step(const gale::la::Matrix& a, const gale::la::Matrix& b,
          gale::la::Workspace* ws) {
  // gale-lint: allow(hot-path-alloc): one-time setup, not per-step
  gale::la::Matrix init = a.MatMul(b);
}
)__",
     "hot-path-alloc", 0},
    {"hot-path-alloc-good-outside-src", "tools/fake.cc",
     R"__(#include "la/matrix.h"
void Bench(const gale::la::Matrix& a, gale::la::Matrix* out) {
  a.MatMulInto(a, out);
  gale::la::Matrix copy = a.MatMul(a);  // tools may allocate freely
}
)__",
     "hot-path-alloc", 0},
    {"hot-path-alloc-good-la-exempt", "src/la/fake.cc",
     R"__(#include "la/matrix.h"
void Wrapper(const gale::la::Matrix& a, gale::la::Matrix* out) {
  a.MatMulInto(a, out);
  gale::la::Matrix copy = a.MatMul(a);  // la defines the wrappers
}
)__",
     "hot-path-alloc", 0},

    {"simd-intrinsics-bad-include", "src/fake/a.cc",
     R"__(#include <immintrin.h>
void Nothing() {}
)__",
     "simd-intrinsics", 1},
    {"simd-intrinsics-bad-usage", "src/nn/fake.cc",
     R"__(void Sum2(double* out, const double* a, const double* b) {
  __m128d va = _mm_loadu_pd(a);
  __m128d vb = _mm_loadu_pd(b);
  _mm_storeu_pd(out, _mm_add_pd(va, vb));
}
)__",
     "simd-intrinsics", 6},
    {"simd-intrinsics-bad-outside-src", "bench/fake.cc",
     R"__(#include <immintrin.h>
void Nothing() {}
)__",
     "simd-intrinsics", 1},
    {"simd-intrinsics-good-home", "src/la/simd.h",
     R"__(#include <immintrin.h>
void Add2(double* out, const double* a, const double* b) {
  _mm_storeu_pd(out, _mm_add_pd(_mm_loadu_pd(a), _mm_loadu_pd(b)));
}
)__",
     "simd-intrinsics", 0},
    {"simd-intrinsics-good-wrapper", "src/nn/fake.cc",
     R"__(#include "la/simd.h"
void Add(double* out, const double* a, const double* b, size_t n) {
  gale::la::simd::Add(out, a, b, n);
}
)__",
     "simd-intrinsics", 0},
    {"simd-intrinsics-suppressed", "src/fake/a.cc",
     R"__(// gale-lint: allow(simd-intrinsics): compat shim names the type
using m128_alias = __m128d;
)__",
     "simd-intrinsics", 0},

    {"allow-reason-bad", "src/fake/a.cc",
     R"__(// gale-lint: allow(io)
void Nothing() {}
)__",
     "allow-reason", 1},
    {"raw-chrono-bad", "src/fake/a.cc",
     R"__(#include <chrono>
double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
)__",
     "raw-chrono-timing", 1},
    {"raw-chrono-good-obs", "src/obs/fake.cc",
     R"__(#include <chrono>
auto Now() { return std::chrono::steady_clock::now(); }
)__",
     "raw-chrono-timing", 0},
    {"raw-chrono-good-harness", "bench/fake.cc",
     R"__(#include <chrono>
auto Now() { return std::chrono::high_resolution_clock::now(); }
)__",
     "raw-chrono-timing", 0},
    {"raw-chrono-suppressed", "src/fake/a.cc",
     R"__(#include <chrono>
// gale-lint: allow(raw-chrono-timing): boot-time log stamp, not telemetry
auto Now() { return std::chrono::system_clock::now(); }
)__",
     "raw-chrono-timing", 0},

    {"comment-and-string-blanking", "src/fake/a.cc",
     R"__(// std::rand() in a comment is fine; so is new in prose.
const char* kDoc = "call std::rand() and malloc() and printf()";
)__",
     "", 0},
};

int SelfTest() {
  int failures = 0;
  for (const Fixture& fx : kFixtures) {
    const std::vector<Finding> findings =
        LintContent(fx.path, fx.source, "");
    int count = 0;
    for (const Finding& f : findings) {
      if (std::string(fx.rule).empty() || f.rule == fx.rule) ++count;
    }
    const bool pass = count == fx.expected_count;
    if (!pass) {
      ++failures;
      std::cout << "FAIL " << fx.name << ": expected " << fx.expected_count
                << " finding(s) of [" << (fx.rule[0] ? fx.rule : "any")
                << "], got " << count << "\n";
      for (const Finding& f : findings) {
        std::cout << "    " << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
      }
    } else {
      std::cout << "ok   " << fx.name << "\n";
    }
  }
  std::cout << "gale_lint self-test: "
            << (sizeof(kFixtures) / sizeof(kFixtures[0])) << " fixtures, "
            << failures << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--self-test") return SelfTest();
  if (argc == 2) return LintTree(argv[1]);
  std::cerr << "usage: gale_lint <repo_root> | gale_lint --self-test\n";
  return 2;
}
