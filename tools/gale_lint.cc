// gale_lint — determinism/safety checker for the GALE tree.
//
// Compatibility driver: the analysis itself lives in tools/analyze/
// (shared with gale_analyze, which adds the include-graph rules, an
// incremental cache, and SARIF output). This binary keeps the original
// CLI, rule ids, and report format so existing scripts keep working:
//
//   gale_lint [<repo_root>]   scan the tree (default: cwd)
//   gale_lint --self-test     run the embedded rule fixtures
//
// Report: one `file:line: [rule] message` line per finding on stdout,
// then `gale_lint: N files, F finding(s)`. Exit 0 clean, 1 findings,
// 2 usage error.
//
// Suppression contract (`// gale-lint: allow(rule[,rule...]): why`):
//   - A trailing annotation (code before the comment on the same line)
//     suppresses the named rules on that line and the next line only.
//   - A standalone annotation line suppresses the named rules from the
//     annotation line through the END of the statement that begins on
//     the next code line — up to the first `;`, `{`, or `}` at
//     paren/bracket depth zero, capped at 32 lines. A multi-line call
//     therefore needs exactly one annotation above it, not one per
//     line.
//   - The reason after the colon is mandatory (rule `allow-reason`),
//     and every named rule must exist in the catalog (rule
//     `allow-unknown-rule`).
// The contract is implemented once, in tools/analyze/annotations.h.
//
// Rule catalog and per-rule rationale: tools/analyze/rules.h.

#include <iostream>
#include <string>

#include "analyze/output.h"
#include "analyze/scanner.h"
#include "analyze/selftest.h"

int main(int argc, char** argv) {
  std::string root = ".";
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (!arg.empty() && arg[0] != '-') {
      root = arg;
    } else {
      std::cerr << "usage: gale_lint [--self-test] [<repo_root>]\n";
      return 2;
    }
  }

  if (self_test) {
    const int failures = gale::analyze::RunSelfTest(std::cout, "gale_lint");
    return failures == 0 ? 0 : 1;
  }

  const gale::analyze::ScanResult result =
      gale::analyze::ScanTree(root, gale::analyze::ScanOptions{});
  std::cout << gale::analyze::FormatText(result.findings);
  std::cout << "gale_lint: " << result.stats.files << " files, "
            << result.findings.size() << " finding(s)\n";
  return result.findings.empty() ? 0 : 1;
}
